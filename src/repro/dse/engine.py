"""The parallel, cached, resumable sweep engine.

The paper frames DIAC as a design-exploration methodology whose space
"exponentially expands" with designs, policies and power-failure
scenarios.  This engine is the infrastructure that makes that expansion
tractable:

* **batching** — the full-factorial point set of a :class:`SweepSpec` is
  grouped by synthesis-stage key (circuit x policy), so every batch shares
  one characterization/tree/policy run via
  :class:`~repro.dse.explorer.SynthesisCache`;
* **parallelism** — batches fan out over a
  :class:`concurrent.futures.ProcessPoolExecutor` with a configurable
  worker count; point evaluation is pure, so parallel results are
  identical to the serial path (modulo ordering);
* **streaming + resume** — records stream to a
  :class:`~repro.dse.store.JsonlResultStore` as batches complete, and a
  re-run against a partial store skips every point already on disk.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from repro.circuits.netlist import Netlist
from repro.core.diac import DiacConfig
from repro.core.replacement import ReplacementCriteria
from repro.dse.explorer import (
    DesignPoint,
    ExplorationRecord,
    SynthesisCache,
    evaluate_point,
    expand_points,
)
from repro.dse.pareto import record_front
from repro.dse.store import JsonlResultStore
from repro.energy.scenarios import ScenarioSpec
from repro.sim.intermittent import TraceTooWeakError
from repro.suite.registry import load_circuit
from repro.tech.nvm import MRAM, NvmTechnology


@dataclass(frozen=True)
class SweepSpec:
    """Full-factorial description of one exploration run.

    Attributes:
        circuits: roster names (or keys of the ``netlists`` mapping given
            to :meth:`SweepEngine.run`) to explore in one run.
        policies: task-granularity policies.
        budget_scales: barrier-budget multipliers.
        technologies: NVM technologies.
        criteria_sets: replacement criteria weightings.
        safe_zones: safe-zone runtime on/off.
        threshold_scales: uniform threshold-set scalings.
        safe_margin_scales: safe-zone width multipliers (``None`` keeps
            the derived default width).
        scenarios: harvest environments to evaluate every point under
            (see :mod:`repro.energy.scenarios`).
    """

    circuits: tuple[str, ...] = ("s27",)
    policies: tuple[int, ...] = (1, 2, 3)
    budget_scales: tuple[float, ...] = (0.5, 1.0, 2.0)
    technologies: tuple[NvmTechnology, ...] = (MRAM,)
    criteria_sets: tuple[ReplacementCriteria, ...] = (
        ReplacementCriteria(),
    )
    safe_zones: tuple[bool, ...] = (True, False)
    threshold_scales: tuple[float, ...] = (1.0,)
    safe_margin_scales: tuple[float | None, ...] = (None,)
    scenarios: tuple[ScenarioSpec, ...] = (ScenarioSpec(),)

    def __post_init__(self) -> None:
        for name in (
            "circuits",
            "policies",
            "budget_scales",
            "technologies",
            "criteria_sets",
            "safe_zones",
            "threshold_scales",
            "safe_margin_scales",
            "scenarios",
        ):
            if not getattr(self, name):
                raise ValueError(f"sweep axis {name!r} must be non-empty")
        # Reject invalid axis values up front, not minutes into a sweep.
        for policy in self.policies:
            if policy not in (1, 2, 3):
                raise ValueError(f"policy must be 1, 2 or 3, got {policy!r}")
        for axis, values in (
            ("budget_scales", self.budget_scales),
            ("threshold_scales", self.threshold_scales),
        ):
            if any(value <= 0 for value in values):
                raise ValueError(f"{axis} values must be positive")
        if any(
            scale is not None and scale <= 0
            for scale in self.safe_margin_scales
        ):
            raise ValueError("safe_margin_scales values must be positive")

    def points(self) -> list[tuple[str, ScenarioSpec, DesignPoint]]:
        """The full-factorial (circuit, scenario, point) list, in axis order."""
        expanded = expand_points(
            self.policies,
            self.budget_scales,
            self.technologies,
            self.criteria_sets,
            self.safe_zones,
            self.threshold_scales,
            self.safe_margin_scales,
        )
        return [
            (circuit, scenario, point)
            for circuit in self.circuits
            for scenario in self.scenarios
            for point in expanded
        ]

    def __len__(self) -> int:
        lengths = (
            len(self.circuits),
            len(self.policies),
            len(self.budget_scales),
            len(self.technologies),
            len(self.criteria_sets),
            len(self.safe_zones),
            len(self.threshold_scales),
            len(self.safe_margin_scales),
            len(self.scenarios),
        )
        total = 1
        for n in lengths:
            total *= n
        return total


@dataclass(frozen=True)
class SweepFailure:
    """One design point that could not be evaluated.

    Attributes:
        circuit: the sweep's name for the circuit.
        label: the failed point's display label.
        error: the exception message.
        scenario: display label of the environment the point failed
            under (a point may fail under one scenario and succeed
            under another — e.g. a trace too weak for its thresholds).
    """

    circuit: str
    label: str
    error: str
    scenario: str = ScenarioSpec().label()


@dataclass
class SweepStats:
    """Bookkeeping of one engine run.

    Attributes:
        n_points: points in the spec.
        n_evaluated: points evaluated this run.
        n_resumed: points skipped because the store already had them.
        n_failed: points that raised instead of producing a record.
        n_batches: synthesis-stage groups fanned out.
        synthesize_calls: actual circuit characterizations performed.
        workers: process count used (1 == serial in-process).
        wall_s: wall-clock duration of the run.
    """

    n_points: int = 0
    n_evaluated: int = 0
    n_resumed: int = 0
    n_failed: int = 0
    n_batches: int = 0
    synthesize_calls: int = 0
    workers: int = 1
    wall_s: float = 0.0


@dataclass
class SweepResult:
    """Records plus run statistics.

    ``records`` contains every successful record of the spec — freshly
    evaluated and resumed-from-store alike — ordered by the spec's point
    order; ``failures`` lists the points that raised (an infeasible
    safe-margin, a trace too weak for the configuration, or a scenario
    that no longer resolves — e.g. a moved power-log file) so one bad
    point never aborts the sweep.
    """

    records: list[ExplorationRecord] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)
    failures: list[SweepFailure] = field(default_factory=list)

    def _require_single_scenario(self, what: str, instead: str) -> None:
        """Guard the cross-record aggregates against mixed environments.

        PDP values are only comparable inside one environment, so
        aggregating records from several scenarios would crown whichever
        point ran under the most generous one.
        """
        labels = {r.scenario.label() for r in self.records}
        if len(labels) > 1:
            raise ValueError(
                f"{what}() is not meaningful across scenarios "
                f"({', '.join(sorted(labels))}); use {instead}() or "
                "metrics.robustness_report()"
            )

    def best(self) -> ExplorationRecord:
        """The PDP-optimal record of a single-scenario sweep.

        Raises:
            ValueError: when the result holds no records, or records
                from more than one scenario (use
                :meth:`best_by_scenario` /
                :func:`repro.metrics.robustness_report` instead).
        """
        if not self.records:
            raise ValueError("no records to choose from")
        self._require_single_scenario("best", "best_by_scenario")
        return min(self.records, key=lambda r: r.pdp_js)

    def front(self) -> list[ExplorationRecord]:
        """The Pareto front of a single-scenario sweep.

        Raises:
            ValueError: on records from more than one scenario (use
                :meth:`fronts_by_scenario` instead).
        """
        self._require_single_scenario("front", "fronts_by_scenario")
        return record_front(self.records)

    def by_scenario(self) -> dict[str, list[ExplorationRecord]]:
        """Records grouped by scenario label, in first-seen order.

        PDP values are only comparable inside one environment (a stingy
        scenario inflates every point's PDP), so per-scenario grouping
        is the unit Pareto fronts and "best design" claims live at.
        """
        groups: dict[str, list[ExplorationRecord]] = {}
        for record in self.records:
            groups.setdefault(record.scenario.label(), []).append(record)
        return groups

    def fronts_by_scenario(self) -> dict[str, list[ExplorationRecord]]:
        """Per-scenario efficiency/resiliency Pareto fronts."""
        return {
            label: record_front(records)
            for label, records in self.by_scenario().items()
        }

    def best_by_scenario(self) -> dict[str, ExplorationRecord]:
        """The PDP-optimal record of each scenario."""
        return {
            label: min(records, key=lambda r: r.pdp_js)
            for label, records in self.by_scenario().items()
        }


def _evaluate_batch(
    circuit: str,
    netlist: Netlist,
    jobs: list[tuple[ScenarioSpec, DesignPoint]],
    base_config: DiacConfig | None,
) -> tuple[list[ExplorationRecord], int, list[SweepFailure]]:
    """Evaluate one synthesis-stage group with a batch-local cache.

    Module-level so :class:`ProcessPoolExecutor` can pickle it; returns
    the records, the number of ``synthesize`` calls the batch cost
    (exactly one when the grouping works — scenarios share the stage,
    since the environment never changes the synthesized design), and any
    per-job failures.  ``circuit`` is the sweep's name for the netlist,
    which wins over ``netlist.name`` so resume keys stay stable for
    file-loaded circuits.
    """
    cache = SynthesisCache()
    records = []
    failures = []
    for scenario, point in jobs:
        try:
            record = evaluate_point(
                netlist,
                point,
                base_config=base_config,
                cache=cache,
                scenario=scenario,
            )
        except (ValueError, KeyError, TraceTooWeakError) as error:
            failures.append(
                SweepFailure(
                    circuit=circuit,
                    label=point.label(),
                    error=str(error),
                    scenario=scenario.label(),
                )
            )
            continue
        record.circuit = circuit
        records.append(record)
    return records, cache.synthesize_calls, failures


class SweepEngine:
    """Runs a :class:`SweepSpec` serially or across worker processes.

    Args:
        workers: process count; 1 (default) evaluates in-process with a
            single shared synthesis cache, >1 fans batches out over a
            process pool.
        base_config: synthesis defaults shared by every point.
        store: optional streaming result store; when given, records are
            appended as they are produced and ``resume=True`` skips
            points the store already holds.
    """

    def __init__(
        self,
        workers: int = 1,
        base_config: DiacConfig | None = None,
        store: JsonlResultStore | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.base_config = base_config
        self.store = store

    def run(
        self,
        spec: SweepSpec,
        netlists: dict[str, Netlist] | None = None,
        resume: bool = False,
    ) -> SweepResult:
        """Execute the sweep.

        Args:
            spec: the exploration space.
            netlists: circuit name -> netlist mapping; roster names are
                loaded automatically when omitted.
            resume: skip points already present in the result store.
                Resume keys cover the circuit and the exact design point
                but NOT ``base_config`` — resuming a store written under
                a different base configuration silently mixes results,
                so keep one store per base configuration.

        Returns:
            A :class:`SweepResult` with every record of the spec (fresh
            and resumed) in spec order, plus run statistics.

        Raises:
            KeyError: for a circuit neither in ``netlists`` nor on the
                benchmark roster.
        """
        start = time.perf_counter()
        netlists = dict(netlists or {})
        for name in spec.circuits:
            if name not in netlists:
                netlists[name] = load_circuit(name)

        # Dedupe repeated axis values (e.g. the same circuit listed
        # twice): one evaluation, one record, consistent stats.
        tasks = []
        seen: set[tuple] = set()
        for circuit, scenario, point in spec.points():
            key = (circuit, *scenario.identity(), *point.identity())
            if key not in seen:
                seen.add(key)
                tasks.append((key, circuit, scenario, point))
        stats = SweepStats(n_points=len(tasks), workers=self.workers)

        resumed: dict[tuple, ExplorationRecord] = {}
        if resume and self.store is not None:
            on_disk = {r.key(): r for r in self.store.load()}
            wanted = {key for key, *_rest in tasks}
            resumed = {k: v for k, v in on_disk.items() if k in wanted}
        pending = [
            (circuit, scenario, point)
            for key, circuit, scenario, point in tasks
            if key not in resumed
        ]
        stats.n_resumed = len(tasks) - len(pending)

        # Batch by synthesis-stage group (circuit x policy) so each batch
        # shares one characterization/tree/policy run; scenarios ride in
        # the same batch because they never change the synthesized design.
        groups: dict[
            tuple[str, int], list[tuple[ScenarioSpec, DesignPoint]]
        ] = {}
        for circuit, scenario, point in pending:
            groups.setdefault((circuit, point.policy), []).append(
                (scenario, point)
            )
        stats.n_batches = len(groups)

        fresh: dict[tuple, ExplorationRecord] = {}
        failures: list[SweepFailure] = []
        if self.workers == 1:
            # One cache per circuit key: the stage memo is keyed on
            # netlist.name, and two file-loaded circuits may share a name.
            caches = {circuit: SynthesisCache() for circuit in netlists}
            for circuit, scenario, point in pending:
                try:
                    record = evaluate_point(
                        netlists[circuit],
                        point,
                        base_config=self.base_config,
                        cache=caches[circuit],
                        scenario=scenario,
                    )
                except (ValueError, KeyError, TraceTooWeakError) as error:
                    failures.append(
                        SweepFailure(
                            circuit=circuit,
                            label=point.label(),
                            error=str(error),
                            scenario=scenario.label(),
                        )
                    )
                    continue
                record.circuit = circuit
                fresh[record.key()] = record
                if self.store is not None:
                    self.store.append(record)
            stats.synthesize_calls = sum(
                cache.synthesize_calls for cache in caches.values()
            )
        else:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = [
                    pool.submit(
                        _evaluate_batch, circuit, netlists[circuit],
                        jobs, self.base_config,
                    )
                    for (circuit, _policy), jobs in groups.items()
                ]
                # Persist batches as they finish, not in submission order,
                # so a kill mid-run loses at most the in-flight batches.
                for future in as_completed(futures):
                    records, synth_calls, batch_failures = future.result()
                    stats.synthesize_calls += synth_calls
                    failures.extend(batch_failures)
                    for record in records:
                        fresh[record.key()] = record
                    if self.store is not None:
                        self.store.extend(records)

        stats.n_evaluated = len(fresh)
        stats.n_failed = len(failures)
        ordered = []
        for key, *_rest in tasks:
            record = resumed.get(key) or fresh.get(key)
            if record is not None:
                ordered.append(record)
        stats.wall_s = time.perf_counter() - start
        return SweepResult(records=ordered, stats=stats, failures=failures)
