"""Design-space exploration: sweeps, parallel engine and pareto analysis.

The paper argues the space of designs, policies and power-failure
scenarios "exponentially expands" and demands "an efficient, precise,
automated design tool" (Section I); this package is that tool's
exploration machinery, with harvest scenarios as a first-class axis.
"""

from repro.dse.aggregate import GroupAggregate, SweepAggregator
from repro.dse.engine import (
    SweepEngine,
    SweepFailure,
    SweepResult,
    SweepSpec,
    SweepStats,
)
from repro.dse.explorer import (
    DesignPoint,
    DesignSpaceExplorer,
    ExplorationRecord,
    SynthesisCache,
    evaluate_point,
    expand_points,
)
from repro.dse.faults import FaultPlan, FaultSpec
from repro.dse.pareto import hypervolume_2d, pareto_front, record_front
from repro.dse.request import (
    SweepRequest,
    dump_config,
    load_config_file,
    merge_config,
    request_from_config,
    request_to_config,
)
from repro.dse.resilience import (
    PoolSupervisor,
    ResilienceConfig,
    RetryPolicy,
    TransientEvalError,
    WorkerCrashError,
)
from repro.dse.scoring import best_pdp_by_group, pdp_degradation
from repro.dse.sqlite_store import SqliteResultStore
from repro.dse.store import (
    STORE_SCHEMA_VERSION,
    JsonlResultStore,
    ResultStore,
    detect_backend,
    migrate_store,
    open_store,
    record_from_dict,
    record_key_from_dict,
    record_to_dict,
)
from repro.dse.strategies import (
    STRATEGIES,
    DesignSpace,
    EvalOutcome,
    GridStrategy,
    ParetoEvolutionStrategy,
    Proposal,
    RandomStrategy,
    Range,
    SearchStrategy,
    SuccessiveHalvingStrategy,
    make_strategy,
)
from repro.dse.threshold_opt import (
    MarginOutcome,
    best_margin,
    sweep_safe_margin,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "STRATEGIES",
    "DesignPoint",
    "DesignSpace",
    "DesignSpaceExplorer",
    "EvalOutcome",
    "ExplorationRecord",
    "FaultPlan",
    "FaultSpec",
    "GridStrategy",
    "GroupAggregate",
    "JsonlResultStore",
    "MarginOutcome",
    "ParetoEvolutionStrategy",
    "PoolSupervisor",
    "Proposal",
    "RandomStrategy",
    "Range",
    "ResilienceConfig",
    "ResultStore",
    "RetryPolicy",
    "SearchStrategy",
    "SqliteResultStore",
    "SuccessiveHalvingStrategy",
    "SweepAggregator",
    "SweepEngine",
    "SweepFailure",
    "SweepRequest",
    "SweepResult",
    "SweepSpec",
    "SweepStats",
    "SynthesisCache",
    "TransientEvalError",
    "WorkerCrashError",
    "best_margin",
    "best_pdp_by_group",
    "detect_backend",
    "dump_config",
    "evaluate_point",
    "expand_points",
    "hypervolume_2d",
    "load_config_file",
    "make_strategy",
    "merge_config",
    "migrate_store",
    "open_store",
    "pareto_front",
    "pdp_degradation",
    "record_front",
    "record_from_dict",
    "record_key_from_dict",
    "record_to_dict",
    "request_from_config",
    "request_to_config",
    "sweep_safe_margin",
]
