"""Design-space exploration: sweeps and pareto analysis."""

from repro.dse.explorer import (
    DesignPoint,
    DesignSpaceExplorer,
    ExplorationRecord,
)
from repro.dse.pareto import pareto_front
from repro.dse.threshold_opt import (
    MarginOutcome,
    best_margin,
    sweep_safe_margin,
)

__all__ = [
    "DesignPoint",
    "DesignSpaceExplorer",
    "ExplorationRecord",
    "MarginOutcome",
    "best_margin",
    "pareto_front",
    "sweep_safe_margin",
]
