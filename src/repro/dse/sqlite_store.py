"""SQLite/WAL result store: the indexed backend for large sweeps.

Same :class:`~repro.dse.store.ResultStore` contract as the JSONL
reference backend, different scaling behavior: resume keys, counts,
point lookups and per-(scenario, circuit) group queries are index
reads instead of full-file scans, and a batch append is one
transaction instead of N line writes.

Durability parity with the JSONL torn-tail guarantees (docs/store.md
has the full matrix):

* the database runs in **WAL mode** — a SIGKILL mid-append rolls the
  tail of the write-ahead log back to the last committed transaction,
  the structural analogue of JSONL's "torn final line is skipped";
* ``fsync_every>=1`` maps to ``synchronous=FULL`` (every commit is
  fsynced before ``append``/``extend`` returns); the default 0 maps to
  ``synchronous=NORMAL``, WAL's standard setting, where a power cut may
  lose the most recent commits but never corrupts the database;
* appends are **idempotent upserts** keyed on the resume key, so the
  re-evaluation a crash forces overwrites rather than duplicates — the
  equivalent of JSONL's "last record per key wins" compaction rule,
  enforced at write time;
* a ``busy_timeout`` makes concurrent openers (a `repro store stats`
  against a live sweep) wait instead of failing.

The schema is versioned via :data:`~repro.dse.store.STORE_SCHEMA_VERSION`;
opening a database written by a newer layout raises instead of
misreading it.
"""

from __future__ import annotations

import json
import sqlite3
from collections.abc import Iterator
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dse.faults import FaultPlan

from repro.dse.explorer import ExplorationRecord
from repro.dse.store import (
    STORE_SCHEMA_VERSION,
    StoreQueryMixin,
    record_from_dict,
    record_to_dict,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    point_key TEXT PRIMARY KEY,
    scenario TEXT NOT NULL,
    circuit TEXT NOT NULL,
    pdp_js REAL NOT NULL,
    reexec_energy_j REAL NOT NULL,
    data TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_group
    ON records (scenario, circuit, point_key);
"""

_UPSERT = """
INSERT INTO records (point_key, scenario, circuit, pdp_js, reexec_energy_j, data)
VALUES (?, ?, ?, ?, ?, ?)
ON CONFLICT(point_key) DO UPDATE SET
    scenario = excluded.scenario,
    circuit = excluded.circuit,
    pdp_js = excluded.pdp_js,
    reexec_energy_j = excluded.reexec_energy_j,
    data = excluded.data
"""


def encode_key(key: tuple) -> str:
    """Resume key -> canonical JSON text (floats round-trip via repr)."""
    return json.dumps(list(key))


def decode_key(text: str) -> tuple:
    """Inverse of :func:`encode_key`."""
    return tuple(json.loads(text))


class SqliteResultStore(StoreQueryMixin):
    """Indexed, transactional result store on a single SQLite file.

    Args:
        path: database file (created, with schema, on open).
        fsync_every: 0 (default) runs ``synchronous=NORMAL`` — commits
            may be lost to a power cut until the next WAL sync; any
            value >= 1 runs ``synchronous=FULL`` so every append is
            durable when it returns.  The same knob as the JSONL
            backend, collapsed to SQLite's two meaningful positions.
        fault_plan: optional chaos plan; a matching ``corrupt`` fault
            drops that record's write before commit, simulating a power
            cut whose transaction never landed (the WAL analogue of a
            torn JSONL line — resume re-evaluates exactly that point).
        busy_timeout_s: how long concurrent openers wait on a locked
            database before erroring.

    Raises:
        ValueError: for a negative ``fsync_every`` or a database
            written under a newer schema version.
    """

    def __init__(
        self,
        path: str | Path,
        fsync_every: int = 0,
        fault_plan: "FaultPlan | None" = None,
        busy_timeout_s: float = 5.0,
    ) -> None:
        if fsync_every < 0:
            raise ValueError("fsync_every must be >= 0")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self.fault_plan = fault_plan
        #: Kept for interface symmetry with the JSONL store; SQLite
        #: refuses to read a damaged database rather than skip lines.
        self.last_load_skipped = 0
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(
            f"PRAGMA busy_timeout={int(busy_timeout_s * 1000)}"
        )
        self._conn.execute(
            "PRAGMA synchronous="
            + ("FULL" if fsync_every >= 1 else "NORMAL")
        )
        with self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", json.dumps(STORE_SCHEMA_VERSION)),
                )
            elif json.loads(row[0]) > STORE_SCHEMA_VERSION:
                raise ValueError(
                    f"{self.path} was written under store schema "
                    f"{json.loads(row[0])}; this build reads up to "
                    f"{STORE_SCHEMA_VERSION}"
                )

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        self._conn.close()

    # -- writes ---------------------------------------------------------

    def _row(self, record: ExplorationRecord) -> tuple | None:
        """Upsert parameters for one record, or None if a fault eats it."""
        key = record.key()
        if self.fault_plan is not None:
            from repro.dse.faults import key_text

            if self.fault_plan.corrupt_append(key_text(key)):
                # Simulated power cut: this record's transaction never
                # commits.  WAL recovery discards it wholesale, so —
                # unlike a torn JSONL line — there is nothing to skip
                # on reload; resume just re-evaluates the point.
                return None
        return (
            encode_key(key),
            record.scenario.label(),
            record.circuit,
            record.pdp_js,
            record.reexec_energy_j,
            json.dumps(record_to_dict(record), sort_keys=True),
        )

    def append(self, record: ExplorationRecord) -> None:
        """Upsert one record in its own transaction."""
        self.extend([record])

    def extend(self, records: list[ExplorationRecord]) -> None:
        """Upsert a batch of records in a single transaction."""
        rows = [row for row in map(self._row, records) if row is not None]
        if not rows:
            return
        with self._conn:
            self._conn.executemany(_UPSERT, rows)

    def rewrite(self, records: list[ExplorationRecord]) -> None:
        """Replace the whole record set in one transaction.

        Bypasses fault injection, like the JSONL backend's atomic
        rewrite: a rewrite models compaction/migration, not the
        crash-prone streaming append path.
        """
        rows = [
            (
                encode_key(r.key()),
                r.scenario.label(),
                r.circuit,
                r.pdp_js,
                r.reexec_energy_j,
                json.dumps(record_to_dict(r), sort_keys=True),
            )
            for r in records
        ]
        with self._conn:
            self._conn.execute("DELETE FROM records")
            self._conn.executemany(_UPSERT, rows)

    def compact(self) -> int:
        """Checkpoint the WAL back into the main database file.

        Upserts keep the record set duplicate-free at write time, so
        unlike JSONL compaction there are never stale rows to drop —
        this reclaims the write-ahead log instead.  Returns 0.
        """
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        return 0

    # -- reads ----------------------------------------------------------

    def load(self) -> list[ExplorationRecord]:
        """Every record, in first-insert order."""
        return [
            record_from_dict(json.loads(row[0]))
            for row in self._conn.execute(
                "SELECT data FROM records ORDER BY rowid"
            )
        ]

    def keys(self) -> set[tuple]:
        """Resume keys via an index-only scan — no record JSON touched."""
        return {
            decode_key(row[0])
            for row in self._conn.execute("SELECT point_key FROM records")
        }

    def count(self) -> int:
        """Number of records (SQL count, no rows materialized)."""
        return self._conn.execute(
            "SELECT COUNT(*) FROM records"
        ).fetchone()[0]

    def get(self, key: tuple) -> ExplorationRecord | None:
        """Primary-key lookup of one record."""
        row = self._conn.execute(
            "SELECT data FROM records WHERE point_key = ?",
            (encode_key(key),),
        ).fetchone()
        return None if row is None else record_from_dict(json.loads(row[0]))

    def iter_records(
        self, scenario: str | None = None, circuit: str | None = None
    ) -> Iterator[ExplorationRecord]:
        """Stream records matching the indexed group filters."""
        clauses, params = [], []
        if scenario is not None:
            clauses.append("scenario = ?")
            params.append(scenario)
        if circuit is not None:
            clauses.append("circuit = ?")
            params.append(circuit)
        query = "SELECT data FROM records"
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY rowid"
        for row in self._conn.execute(query, params):
            yield record_from_dict(json.loads(row[0]))

    # -- metadata -------------------------------------------------------

    def get_metadata(self) -> dict:
        """The meta table as a dict (JSON-decoded values)."""
        return {
            row[0]: json.loads(row[1])
            for row in self._conn.execute("SELECT key, value FROM meta")
        }

    def set_metadata(self, **entries: object) -> None:
        """Merge ``entries`` into the meta table in one transaction."""
        with self._conn:
            self._conn.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                [(k, json.dumps(v, sort_keys=True)) for k, v in entries.items()],
            )
