"""Per-state energy accounting over FSM runs.

Breaks an :class:`~repro.fsm.controller.FsmResult` down into where the
energy went — operations, backup/restore traffic, sleep leakage — the
kind of budget table the paper's "life cycle energy optimization" framing
asks for.  Works from the result's counters plus the controller's cost
models, so it composes with any trace or threshold configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.tech.cacti import backup_array_for
from repro.tech.nvm import MRAM, NvmTechnology

if TYPE_CHECKING:  # avoid a circular import at runtime (fsm -> core -> tech)
    from repro.fsm.controller import FsmResult, OperationCosts


@dataclass(frozen=True)
class EnergyBreakdown:
    """Where one FSM run's energy went, in joules.

    All figures are *nominal* (the ±10 % per-operation jitter averages
    out): operations use their configured costs, NVM traffic uses the
    CACTI-modelled array, sleep uses the leakage power times the time the
    run spent asleep.
    """

    sense_j: float
    compute_j: float
    transmit_j: float
    backup_j: float
    restore_j: float
    sleep_j: float

    @property
    def total_j(self) -> float:
        """Total accounted energy."""
        return (
            self.sense_j
            + self.compute_j
            + self.transmit_j
            + self.backup_j
            + self.restore_j
            + self.sleep_j
        )

    @property
    def nvm_fraction(self) -> float:
        """Share of energy spent on NVM traffic (the DIAC target metric)."""
        total = self.total_j
        if total <= 0:
            return 0.0
        return (self.backup_j + self.restore_j) / total

    def as_table_rows(self) -> list[list[object]]:
        """Rows for :func:`repro.metrics.report.format_table`."""
        total = self.total_j or 1.0
        rows = []
        for label, value in (
            ("sense", self.sense_j),
            ("compute", self.compute_j),
            ("transmit", self.transmit_j),
            ("backup (NVM writes)", self.backup_j),
            ("restore (NVM reads)", self.restore_j),
            ("sleep leakage", self.sleep_j),
        ):
            rows.append([label, f"{value * 1e3:.3f} mJ", f"{100 * value / total:.1f} %"])
        return rows


def breakdown(
    result: "FsmResult",
    costs: "OperationCosts | None" = None,
    technology: NvmTechnology = MRAM,
    state_bits: int = 64,
    sleep_leakage_w: float | None = None,
) -> EnergyBreakdown:
    """Account one FSM run's energy by category.

    Args:
        result: the controller's output.
        costs: operation costs (paper defaults when omitted).
        technology: NVM used by the backup path.
        state_bits: bits per backup/restore image.
        sleep_leakage_w: standby power; when given, sleep energy is
            estimated from the time the timeline spent in the Sleep state.

    Returns:
        An :class:`EnergyBreakdown`.
    """
    from repro.fsm.controller import OperationCosts

    costs = costs or OperationCosts()
    array = backup_array_for(state_bits, technology)
    write_j = array.write_cost(state_bits).energy_j
    read_j = array.read_cost(state_bits).energy_j

    sleep_j = 0.0
    if sleep_leakage_w is not None and len(result.timeline) >= 2:
        from repro.fsm.states import NodeState

        sleep_time = 0.0
        for (t0, _e0, s0), (t1, _e1, _s1) in zip(
            result.timeline, result.timeline[1:]
        ):
            if s0 is NodeState.SLEEP:
                sleep_time += t1 - t0
        sleep_j = sleep_time * sleep_leakage_w

    return EnergyBreakdown(
        sense_j=result.count("senses") * costs.sense_j,
        compute_j=result.count("computes") * costs.compute_j,
        transmit_j=result.count("transmits") * costs.transmit_j,
        backup_j=result.count("backups") * write_j,
        restore_j=result.count("restores") * read_j,
        sleep_j=sleep_j,
    )
