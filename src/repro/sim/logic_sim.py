"""Event-free cycle-accurate logic simulator.

Evaluates a netlist one clock cycle at a time: combinational gates settle
in topological order, then all flip-flops capture their data inputs
simultaneously (two-phase semantics, as real synchronous hardware does).
Used for functional validation of DIAC's transformations (the paper's
Section III-D replacement must preserve function) and by the
intermittent executor to replay partitions.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping

from repro.circuits.gates import GateType, evaluate_gate
from repro.circuits.netlist import Gate, Netlist


class SimulationError(RuntimeError):
    """Raised when a simulation is driven with inconsistent stimuli."""


class LogicSimulator:
    """Cycle-level simulator for a :class:`Netlist`.

    Attributes:
        netlist: the circuit being simulated.
        state: current flip-flop contents, keyed by DFF output net.
    """

    def __init__(self, netlist: Netlist, initial_state: int = 0) -> None:
        netlist.validate()
        self.netlist = netlist
        self._order: list[Gate] = [
            g for g in netlist.topological_order() if g.is_combinational
        ]
        self._ffs: list[Gate] = netlist.flip_flops
        self._initial = initial_state
        self.state: dict[str, int] = {
            ff.name: initial_state for ff in self._ffs
        }
        self._toggles = 0
        self._cycles = 0
        self._last_values: dict[str, int] = {}

    # -- control ------------------------------------------------------------

    def reset(self) -> None:
        """Reset flip-flops to the initial state and clear statistics."""
        self.state = {ff.name: self._initial for ff in self._ffs}
        self._toggles = 0
        self._cycles = 0
        self._last_values = {}

    def load_state(
        self, snapshot: Mapping[str, int], strict: bool = False
    ) -> None:
        """Restore flip-flop contents from ``snapshot`` (a backup image).

        Snapshot keys that are not flip-flop nets of this netlist mean
        the backup image is corrupted or belongs to a different design —
        a partial restore with no signal used to be the failure mode, so
        unknown nets now warn, or raise when ``strict`` is set.  Known
        nets are restored either way; flip-flops absent from the
        snapshot keep their current contents.

        Raises:
            SimulationError: ``strict`` and the snapshot holds unknown
                nets.
        """
        unknown = [net for net in snapshot if net not in self.state]
        if unknown:
            message = (
                f"snapshot holds {len(unknown)} net(s) that are not "
                f"flip-flops of {self.netlist.name!r}: "
                f"{', '.join(sorted(unknown)[:5])}"
                f"{'...' if len(unknown) > 5 else ''}"
            )
            if strict:
                raise SimulationError(message)
            warnings.warn(message, stacklevel=2)
        for net in self.state:
            if net in snapshot:
                self.state[net] = snapshot[net]

    def snapshot(self) -> dict[str, int]:
        """Copy of the current flip-flop contents (what a backup saves)."""
        return dict(self.state)

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, inputs: Mapping[str, int]) -> dict[str, int]:
        """Settle combinational logic for the current state; no clock edge.

        Args:
            inputs: value for every primary input.

        Returns:
            Values of every net in the design.

        Raises:
            SimulationError: if a primary input is missing.
        """
        values: dict[str, int] = {}
        for gate in self.netlist.gates.values():
            if gate.gtype is GateType.INPUT:
                if gate.name not in inputs:
                    raise SimulationError(f"missing input {gate.name!r}")
                values[gate.name] = int(bool(inputs[gate.name]))
            elif gate.gtype is GateType.CONST0:
                values[gate.name] = 0
            elif gate.gtype is GateType.CONST1:
                values[gate.name] = 1
            elif gate.is_sequential:
                values[gate.name] = self.state[gate.name]
        for gate in self._order:
            values[gate.name] = evaluate_gate(
                gate.gtype, [values[src] for src in gate.inputs]
            )
        return values

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        """Run one full clock cycle; returns primary output values."""
        values = self.evaluate(inputs)
        if self._last_values:
            self._toggles += sum(
                1
                for net, val in values.items()
                if self._last_values.get(net) != val
            )
        self._last_values = values
        for ff in self._ffs:
            self.state[ff.name] = values[ff.inputs[0]]
        self._cycles += 1
        return {net: values[net] for net in self.netlist.outputs}

    def run(
        self, vectors: list[Mapping[str, int]]
    ) -> list[dict[str, int]]:
        """Apply a sequence of input vectors; returns per-cycle outputs."""
        return [self.step(vector) for vector in vectors]

    # -- statistics -----------------------------------------------------------

    @property
    def cycles(self) -> int:
        """Number of clock cycles simulated since the last reset."""
        return self._cycles

    @property
    def toggles(self) -> int:
        """Total net toggles observed since the last reset (exact integer)."""
        return self._toggles

    def activity_factor(self) -> float:
        """Observed average switching activity per net per cycle."""
        if self._cycles <= 1 or not self.netlist.gates:
            return 0.0
        return self._toggles / ((self._cycles - 1) * len(self.netlist.gates))
