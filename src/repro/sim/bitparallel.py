"""Word-level bit-parallel logic simulation.

Packs N independent stimulus vectors ("lanes") into one Python integer
per net, so a single pass over the gate program evaluates all N lanes at
once: AND/OR/XOR become bitwise folds over the packed words, inversions
XOR against the lane mask, and the two-phase flip-flop capture moves
whole words.  Toggle statistics come from popcounts of consecutive-cycle
XORs, which makes activity estimation on the big roster circuits
(s38584, des, i10) two orders of magnitude cheaper than stepping the
scalar :class:`~repro.sim.logic_sim.LogicSimulator` once per lane.

The scalar simulator stays the bit-exact oracle: lane ``i`` of every
word this simulator produces equals the value the scalar simulator
computes when driven with bit ``i`` of the same stimulus, and the
integer toggle totals agree lane by lane (``tests/test_differential.py``
pins this over generated netlists and roster circuits).  The vectorized
path is toggleable off via :func:`bitparallel_disabled` so every caller
can fall back to the oracle.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterator, Mapping, Sequence
from contextlib import contextmanager

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.sim.logic_sim import SimulationError

#: Routing switch consulted by the vectorized entry points (e.g.
#: :func:`repro.tech.synthesis.estimate_activity`).  The simulator class
#: itself always works; the toggle only controls whether callers prefer
#: it over the scalar oracle.
_USE_BITPARALLEL = True


def bitparallel_enabled() -> bool:
    """Whether callers should route through the bit-parallel kernel."""
    return _USE_BITPARALLEL


@contextmanager
def bitparallel_disabled() -> Iterator[None]:
    """Route activity estimation through the scalar oracle for the block."""
    global _USE_BITPARALLEL
    previous = _USE_BITPARALLEL
    _USE_BITPARALLEL = False
    try:
        yield
    finally:
        _USE_BITPARALLEL = previous


# Compiled opcodes: a flat int dispatch keeps the per-gate cost of the
# inner loop at one tuple unpack and one comparison chain.
_OP_AND, _OP_NAND, _OP_OR, _OP_NOR, _OP_XOR, _OP_XNOR = range(6)
_OP_NOT, _OP_BUF, _OP_MUX = 6, 7, 8

_OPCODES = {
    GateType.AND: _OP_AND,
    GateType.NAND: _OP_NAND,
    GateType.OR: _OP_OR,
    GateType.NOR: _OP_NOR,
    GateType.XOR: _OP_XOR,
    GateType.XNOR: _OP_XNOR,
    GateType.NOT: _OP_NOT,
    GateType.BUF: _OP_BUF,
    GateType.MUX: _OP_MUX,
}


def pack_vectors(
    vectors: Sequence[Mapping[str, int]], names: Sequence[str]
) -> dict[str, int]:
    """Pack per-lane bit vectors into one word per net.

    Lane ``i`` of each word is ``vectors[i][name]`` (truthiness, exactly
    like the scalar simulator's input coercion).
    """
    words = dict.fromkeys(names, 0)
    for lane, vector in enumerate(vectors):
        bit = 1 << lane
        for name in names:
            if vector.get(name):
                words[name] |= bit
    return words


def unpack_word(word: int, lanes: int) -> list[int]:
    """Split a packed word back into its per-lane bits."""
    return [(word >> lane) & 1 for lane in range(lanes)]


def lane_slice(words: Mapping[str, int], lane: int) -> dict[str, int]:
    """Extract one lane's scalar view of a packed value mapping."""
    return {name: (word >> lane) & 1 for name, word in words.items()}


class BitParallelSimulator:
    """Cycle-level simulator evaluating ``lanes`` stimulus vectors at once.

    Mirrors the :class:`~repro.sim.logic_sim.LogicSimulator` API with
    packed words in place of bits: inputs, outputs, flip-flop state and
    snapshots are all ``lanes``-wide integers whose bit ``i`` is lane
    ``i``'s value.

    Args:
        netlist: the circuit to simulate.
        lanes: stimulus vectors packed per word (>= 1; 64 keeps words in
            one machine limb, wider is legal and still cheap).
        initial_state: broadcast flip-flop reset value (0 or 1 in every
            lane, matching the scalar simulator's ``initial_state``).
        track_lane_toggles: also maintain per-lane toggle counters
            (costs a popcount walk per toggled net; meant for the
            differential tests, not the estimation hot path).
    """

    def __init__(
        self,
        netlist: Netlist,
        lanes: int = 64,
        initial_state: int = 0,
        track_lane_toggles: bool = False,
    ) -> None:
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        netlist.validate()
        self.netlist = netlist
        self.lanes = lanes
        self.mask = (1 << lanes) - 1
        self._initial_word = self.mask if initial_state else 0

        names = list(netlist.gates)
        self._index = {name: i for i, name in enumerate(names)}
        self._names = names
        index = self._index
        self._input_idx = [(name, index[name]) for name in netlist.inputs]
        self._const_idx = [
            (index[g.name], self.mask if g.gtype is GateType.CONST1 else 0)
            for g in netlist.gates.values()
            if g.gtype in (GateType.CONST0, GateType.CONST1)
        ]
        self._program = [
            (index[g.name], _OPCODES[g.gtype],
             tuple(index[src] for src in g.inputs))
            for g in netlist.topological_order()
            if g.is_combinational
        ]
        #: (state slot, data-source index) pairs; slot order defines the
        #: packed state list.
        self._ffs = netlist.flip_flops
        self._ff_prog = [
            (slot, index[ff.inputs[0]])
            for slot, ff in enumerate(self._ffs)
        ]
        self._ff_idx = [(slot, index[ff.name])
                        for slot, ff in enumerate(self._ffs)]
        self._out_idx = [(net, index[net]) for net in netlist.outputs]

        self._state = [self._initial_word for _ in self._ffs]
        self._track_lanes = track_lane_toggles
        self._lane_toggles = [0] * lanes if track_lane_toggles else None
        self._toggles = 0
        self._cycles = 0
        self._last: list[int] | None = None

    # -- control ------------------------------------------------------------

    def reset(self) -> None:
        """Reset flip-flops to the initial state and clear statistics."""
        self._state = [self._initial_word for _ in self._ffs]
        self._toggles = 0
        self._cycles = 0
        self._last = None
        if self._lane_toggles is not None:
            self._lane_toggles = [0] * self.lanes

    @property
    def state(self) -> dict[str, int]:
        """Current flip-flop words, keyed by DFF output net."""
        return {
            ff.name: self._state[slot]
            for slot, ff in enumerate(self._ffs)
        }

    def snapshot(self) -> dict[str, int]:
        """Copy of the current flip-flop words (what a backup saves)."""
        return self.state

    def load_state(
        self, snapshot: Mapping[str, int], strict: bool = False
    ) -> None:
        """Restore flip-flop words from ``snapshot`` (a backup image).

        Mirrors :meth:`LogicSimulator.load_state`: snapshot keys that are
        not flip-flop nets of this netlist indicate a corrupted or
        mismatched backup image, so they warn (or raise when ``strict``).
        Words are masked to the simulator's lane width.

        Raises:
            SimulationError: ``strict`` and the snapshot holds unknown
                nets.
        """
        known = {ff.name for ff in self._ffs}
        unknown = [net for net in snapshot if net not in known]
        if unknown:
            message = (
                f"snapshot holds {len(unknown)} net(s) that are not "
                f"flip-flops of {self.netlist.name!r}: "
                f"{', '.join(sorted(unknown)[:5])}"
                f"{'...' if len(unknown) > 5 else ''}"
            )
            if strict:
                raise SimulationError(message)
            warnings.warn(message, stacklevel=2)
        for slot, ff in enumerate(self._ffs):
            if ff.name in snapshot:
                self._state[slot] = snapshot[ff.name] & self.mask

    # -- evaluation -----------------------------------------------------------

    def _settle(self, inputs: Mapping[str, int]) -> list[int]:
        """Settle combinational logic; returns the packed net-value list."""
        mask = self.mask
        vals = [0] * len(self._names)
        for name, i in self._input_idx:
            word = inputs.get(name)
            if word is None and name not in inputs:
                raise SimulationError(f"missing input {name!r}")
            vals[i] = (word or 0) & mask
        for i, word in self._const_idx:
            vals[i] = word
        state = self._state
        for slot, i in self._ff_idx:
            vals[i] = state[slot]
        for out, code, srcs in self._program:
            if code <= _OP_NAND:  # AND / NAND
                v = vals[srcs[0]]
                for s in srcs[1:]:
                    v &= vals[s]
                if code == _OP_NAND:
                    v ^= mask
            elif code <= _OP_NOR:  # OR / NOR
                v = vals[srcs[0]]
                for s in srcs[1:]:
                    v |= vals[s]
                if code == _OP_NOR:
                    v ^= mask
            elif code <= _OP_XNOR:  # XOR / XNOR (n-ary parity)
                v = vals[srcs[0]]
                for s in srcs[1:]:
                    v ^= vals[s]
                if code == _OP_XNOR:
                    v ^= mask
            elif code == _OP_NOT:
                v = vals[srcs[0]] ^ mask
            elif code == _OP_BUF:
                v = vals[srcs[0]]
            else:  # MUX(select, a, b) -> b where select else a
                sel = vals[srcs[0]]
                v = (vals[srcs[2]] & sel) | (vals[srcs[1]] & (sel ^ mask))
            vals[out] = v
        return vals

    def evaluate(self, inputs: Mapping[str, int]) -> dict[str, int]:
        """Settle combinational logic; no clock edge, no statistics.

        Args:
            inputs: packed word for every primary input (bits beyond the
                lane width are masked off).

        Returns:
            Packed values of every net in the design.

        Raises:
            SimulationError: if a primary input is missing.
        """
        vals = self._settle(inputs)
        return dict(zip(self._names, vals))

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        """Run one clock cycle in every lane; returns output words."""
        vals = self._settle(inputs)
        last = self._last
        if last is not None:
            toggles = 0
            if self._lane_toggles is None:
                for v, lv in zip(vals, last):
                    toggles += (v ^ lv).bit_count()
            else:
                lane_toggles = self._lane_toggles
                for v, lv in zip(vals, last):
                    x = v ^ lv
                    toggles += x.bit_count()
                    while x:
                        low = x & -x
                        lane_toggles[low.bit_length() - 1] += 1
                        x ^= low
            self._toggles += toggles
        self._last = vals
        state = self._state
        for slot, src in self._ff_prog:
            state[slot] = vals[src]
        self._cycles += 1
        return {net: vals[i] for net, i in self._out_idx}

    def run(
        self, vectors: list[Mapping[str, int]]
    ) -> list[dict[str, int]]:
        """Apply a sequence of packed input words; per-cycle outputs."""
        return [self.step(vector) for vector in vectors]

    # -- statistics -----------------------------------------------------------

    @property
    def cycles(self) -> int:
        """Number of clock cycles simulated since the last reset."""
        return self._cycles

    @property
    def toggles(self) -> int:
        """Total net toggles, summed across every lane (exact integer)."""
        return self._toggles

    @property
    def lane_toggles(self) -> list[int]:
        """Per-lane toggle totals (requires ``track_lane_toggles``)."""
        if self._lane_toggles is None:
            raise SimulationError(
                "per-lane toggle tracking is off; construct the "
                "simulator with track_lane_toggles=True"
            )
        return list(self._lane_toggles)

    def activity_factor(self) -> float:
        """Mean switching activity per net per cycle across all lanes.

        The lane-mean of the scalar simulator's
        :meth:`~repro.sim.logic_sim.LogicSimulator.activity_factor`:
        toggle totals are exact integers, so this equals summing the
        per-lane scalar totals and dividing once — bit-identical to the
        scalar fallback path of
        :func:`repro.tech.synthesis.estimate_activity`.
        """
        if self._cycles <= 1 or not self.netlist.gates:
            return 0.0
        return self._toggles / (
            (self._cycles - 1) * len(self.netlist.gates) * self.lanes
        )
