"""Simulation engines: logic, intermittent execution."""

from repro.sim.intermittent import (
    ExecutionResult,
    IntermittentExecutor,
    SchemeProfile,
    TraceTooWeakError,
)
from repro.sim.logic_sim import LogicSimulator, SimulationError
from repro.sim.power_sim import EnergyBreakdown, breakdown

__all__ = [
    "EnergyBreakdown",
    "ExecutionResult",
    "IntermittentExecutor",
    "LogicSimulator",
    "SchemeProfile",
    "SimulationError",
    "TraceTooWeakError",
    "breakdown",
]
