"""Simulation engines: logic, intermittent execution.

The intermittent executor realizes the paper's Section IV-C evaluation
harness (identical macro task per scheme, backup/restore charged at NVM
prices); the logic simulator backs functional validation.
"""

from repro.sim.bitparallel import (
    BitParallelSimulator,
    bitparallel_disabled,
    bitparallel_enabled,
    lane_slice,
    pack_vectors,
    unpack_word,
)
from repro.sim.intermittent import (
    ExecutionResult,
    IntermittentExecutor,
    SchemeProfile,
    TraceTooWeakError,
)
from repro.sim.logic_sim import LogicSimulator, SimulationError
from repro.sim.power_sim import EnergyBreakdown, breakdown

__all__ = [
    "BitParallelSimulator",
    "EnergyBreakdown",
    "ExecutionResult",
    "IntermittentExecutor",
    "LogicSimulator",
    "SchemeProfile",
    "SimulationError",
    "TraceTooWeakError",
    "bitparallel_disabled",
    "bitparallel_enabled",
    "breakdown",
    "lane_slice",
    "pack_vectors",
    "unpack_word",
]
