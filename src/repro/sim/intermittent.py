"""The system-level intermittent execution simulator.

This is the reproduction of the paper's "system-level in-house framework":
it executes a macro task (a benchmark circuit rerun until its energy
exceeds the storage capacity — Section IV-C assumption (1)) against a
cyclic harvest trace and a virtual capacitor, under one of the four
schemes Fig. 5 compares.  The execution model is *fluid*: forward progress
is measured in joules of useful work, and the simulator advances between
events (segment changes, threshold crossings, work completion) in closed
form, so macro tasks of thousands of passes cost only hundreds of events.

Scheme semantics (Section IV-B):

* Schemes without the safe zone (NV-based, NV-clustering, plain DIAC)
  back up *every time* the active zone exits at Th_SafeZone — the paper
  defines the safe zone as "a narrow range that lies between the exit
  points of Cp or Tr and the beginning of Bk", so removing it makes every
  exit a backup.
* Optimized DIAC sleeps through the zone: if harvesting recovers the
  energy before Th_Bk, the system resumes "fetching states directly from
  volatile storage" — no NVM write, no restore.  Only decays to Th_Bk
  commit.
* Checkpoint-granularity schemes (NV-FF / LE-FF) lose nothing on a power
  cycle; DIAC loses the work since the last crossed barrier and re-executes
  it after the restore.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.calibration import (
    INITIAL_ENERGY_FRACTION,
    MACRO_TASK_ENERGY_RATIO,
    REEXECUTION_FRACTION,
)
from repro.energy.harvester import HarvestTrace
from repro.energy.thresholds import ThresholdSet
from repro.tech.cacti import MemoryArrayModel, backup_array_for
from repro.tech.nvm import MRAM, NvmTechnology


@dataclass(frozen=True)
class SchemeProfile:
    """Everything the executor needs to know about one scheme's design.

    Attributes:
        name: scheme name ("NV-based", "NV-clustering", "DIAC",
            "Optimized DIAC").
        pass_energy_j: energy of one evaluation pass, including state-
            element clocking and any NV-FF/LE-FF overhead.
        pass_time_s: duration of one pass, including delay penalties.
        commit_bits: bits written per backup commit.
        restore_bits: bits read per restore.
        reexec_window_j: work lost per power cycle (half of it in
            expectation); zero for checkpoint-granularity schemes.
        uses_safe_zone: optimized-DIAC runtime when True.
        technology: NVM technology of the backup path.
        nvm_bus_bits: width of the datapath-to-array bus (NV-FFs write
            in situ and should pass ``commit_bits`` here).
    """

    name: str
    pass_energy_j: float
    pass_time_s: float
    commit_bits: int
    restore_bits: int
    reexec_window_j: float
    uses_safe_zone: bool
    technology: NvmTechnology = MRAM
    nvm_bus_bits: int | None = None

    def __post_init__(self) -> None:
        if self.pass_energy_j <= 0 or self.pass_time_s <= 0:
            raise ValueError("pass energy and time must be positive")
        if self.commit_bits < 1 or self.restore_bits < 1:
            raise ValueError("commit/restore bits must be >= 1")

    @property
    def active_power_w(self) -> float:
        """Power drawn while computing."""
        return self.pass_energy_j / self.pass_time_s

    def backup_array(self) -> MemoryArrayModel:
        """The backup array model used for commit/restore costing."""
        bits = max(self.commit_bits, self.restore_bits)
        array = backup_array_for(bits, technology=self.technology)
        if self.nvm_bus_bits is not None:
            from repro.tech.cacti import ArrayGeometry

            geometry = ArrayGeometry(
                capacity_bits=max(bits, self.nvm_bus_bits),
                width_bits=self.nvm_bus_bits,
            )
            array = MemoryArrayModel(geometry, technology=self.technology)
        return array


@dataclass
class ExecutionResult:
    """Outcome of one macro-task execution.

    Attributes:
        scheme: profile name.
        completed: whether the macro task finished within the time limit.
        work_target_j: useful work required.
        useful_energy_j: net useful work performed (== target on success).
        total_energy_j: all energy consumed (work + overheads + re-exec).
        active_time_s: busy time — compute + commit + restore (stall and
            charging time excluded).
        wall_time_s: total simulated time.  On completed runs this is the
            full simulated span of the macro task; a result constructed
            by hand mid-run (``completed`` False) carries whatever clock
            its builder recorded.
        n_dips / n_backups / n_restores / n_safe_recoveries: event counts.
        nvm_bits_written / nvm_bits_read: NVM traffic.
        reexec_energy_j: work redone after power cycles.
    """

    scheme: str
    completed: bool
    work_target_j: float
    useful_energy_j: float
    total_energy_j: float
    active_time_s: float
    wall_time_s: float
    n_dips: int = 0
    n_backups: int = 0
    n_restores: int = 0
    n_safe_recoveries: int = 0
    nvm_bits_written: int = 0
    nvm_bits_read: int = 0
    reexec_energy_j: float = 0.0

    @property
    def pdp_js(self) -> float:
        """Power-delay product: total consumed energy x active time
        (``total_energy_j * active_time_s``).  Any monotone consistent
        definition preserves the normalized comparison of Fig. 5."""
        return self.total_energy_j * self.active_time_s

    @property
    def energy_overhead(self) -> float:
        """Fraction of consumed energy that was not first-pass useful work."""
        if self.total_energy_j <= 0:
            return 0.0
        return 1.0 - self.useful_energy_j / self.total_energy_j


class TraceTooWeakError(RuntimeError):
    """Raised when the harvest trace cannot sustain the macro task."""


class IntermittentExecutor:
    """Fluid executor for one scheme on one harvest environment.

    Args:
        profile: the scheme under test.
        e_max_j: storage capacity of the evaluation capacitor.
        trace: cyclic harvest trace.
        thresholds: threshold set; derived from ``e_max_j`` when omitted.
        sleep_drain_w: standby drain while parked in the safe zone.
    """

    def __init__(
        self,
        profile: SchemeProfile,
        e_max_j: float,
        trace: HarvestTrace,
        thresholds: ThresholdSet | None = None,
        sleep_drain_w: float = 0.0,
    ) -> None:
        if e_max_j <= 0:
            raise ValueError("e_max_j must be positive")
        self.profile = profile
        self.e_max_j = e_max_j
        self.trace = trace
        self.thresholds = thresholds or ThresholdSet.from_e_max(e_max_j)
        self.sleep_drain_w = sleep_drain_w
        self._array = profile.backup_array()

    # -- cost helpers -----------------------------------------------------------

    def _commit_cost(self) -> tuple[float, float]:
        cost = self._array.write_cost(self.profile.commit_bits)
        return cost.energy_j, cost.latency_s

    def _restore_cost(self) -> tuple[float, float]:
        cost = self._array.read_cost(self.profile.restore_bits)
        return cost.energy_j, cost.latency_s

    # -- main loop ---------------------------------------------------------------

    def run(
        self,
        work_target_j: float | None = None,
        max_cycles: float = 400.0,
    ) -> ExecutionResult:
        """Execute a macro task of ``work_target_j`` useful joules.

        Defaults to the paper's assumption (1): the macro task is
        ``MACRO_TASK_ENERGY_RATIO x E_MAX`` of work.

        Raises:
            TraceTooWeakError: if the trace cannot deliver the work within
                ``max_cycles`` trace periods.
        """
        profile = self.profile
        th = self.thresholds
        if work_target_j is None:
            work_target_j = MACRO_TASK_ENERGY_RATIO * self.e_max_j
        commit_e, commit_t = self._commit_cost()
        restore_e, restore_t = self._restore_cost()
        p_active = profile.active_power_w
        # Hot-loop hoists: the event loop runs thousands of iterations per
        # macro task, so threshold levels, the trace accessor and the
        # result counters all live in locals and are written back once.
        segment_at = self.trace.segment_at
        safe_j = th.safe_j
        compute_j = th.compute_j
        backup_j = th.backup_j
        e_max = self.e_max_j
        sleep_drain = self.sleep_drain_w
        uses_safe_zone = profile.uses_safe_zone

        t = 0.0
        e = INITIAL_ENERGY_FRACTION * e_max
        work = 0.0
        #: Progress (in joules of work) already safe in NVM.
        committed_work = 0.0
        mode = "active" if e > compute_j else "charge"
        t_limit = max_cycles * self.trace.period_s
        eps = 1e-18

        total_energy = 0.0
        active_time = 0.0
        reexec_energy = 0.0
        n_dips = n_backups = n_restores = n_safe_recoveries = 0

        while work < work_target_j - eps:
            if t > t_limit:
                raise TraceTooWeakError(
                    f"{profile.name}: trace {self.trace.name!r} could not "
                    f"sustain the macro task within {max_cycles:g} cycles "
                    f"(work {work:.3e}/{work_target_j:.3e} J)"
                )
            seg, seg_remaining = segment_at(t)
            p_in = seg.power_w

            if mode == "active":
                p_net = p_in - p_active
                if p_net >= 0:
                    # Harvest covers computation: bounded by segment or work.
                    dt = min(seg_remaining, (work_target_j - work) / p_active)
                    e = min(e + p_net * dt, e_max)
                else:
                    t_deplete = max(0.0, e - safe_j) / (-p_net)
                    dt = min(
                        seg_remaining,
                        t_deplete,
                        (work_target_j - work) / p_active,
                    )
                    e += p_net * dt
                work += p_active * dt
                total_energy += p_active * dt
                active_time += dt
                t += dt
                if work >= work_target_j - eps:
                    break
                if e <= safe_j + eps:
                    # Active zone exited (dashed-blue arrow of Fig. 3).
                    n_dips += 1
                    if uses_safe_zone:
                        mode = "dip"
                    else:
                        n_backups += 1
                        total_energy += commit_e
                        active_time += commit_t
                        e = max(e - commit_e, 0.0)
                        committed_work = self._commit_point(work)
                        mode = "charge"
                continue

            if mode == "dip":
                # Parked in the safe zone: recover or decay (Fig. 4 event 5).
                p_net = p_in - sleep_drain
                if p_net > 0:
                    t_recover = (compute_j - e) / p_net
                    if t_recover <= seg_remaining:
                        e = compute_j
                        t += t_recover
                        n_safe_recoveries += 1
                        mode = "active"
                        continue
                    e = min(e + p_net * seg_remaining, e_max)
                    t += seg_remaining
                    continue
                t_decay = (e - backup_j) / (-p_net) if p_net < 0 else math.inf
                if t_decay <= seg_remaining:
                    # Decayed to Th_Bk: the power interrupt forces a backup.
                    t += t_decay
                    e = backup_j
                    n_backups += 1
                    total_energy += commit_e
                    active_time += commit_t
                    e = max(e - commit_e, 0.0)
                    committed_work = self._commit_point(work)
                    mode = "charge"
                    continue
                e += p_net * seg_remaining
                t += seg_remaining
                continue

            # mode == "charge": recharging after a backup (volatile lost).
            # The restore itself must be paid for: recharge past Th_Cp by
            # the restore energy (capped at capacity) so the system re-
            # enters the active zone at Th_Cp, never below Th_SafeZone —
            # otherwise t_deplete would go negative and regress time.
            if p_in > 0:
                resume_e = min(compute_j + restore_e, e_max)
                if resume_e - restore_e < safe_j:
                    # Even a full capacitor cannot pay the restore and
                    # leave the system inside the operating zone — fail
                    # loudly rather than conjure energy.
                    raise TraceTooWeakError(
                        f"{profile.name}: restore cost {restore_e:.3e} J "
                        f"cannot be paid from the {e_max:.3e} J "
                        f"capacitor without dropping below Th_SafeZone "
                        f"({safe_j:.3e} J)"
                    )
                t_resume = (resume_e - e) / p_in
                if t_resume <= seg_remaining:
                    t += t_resume
                    e = resume_e
                    # Restore + re-execute the uncommitted tail.
                    n_restores += 1
                    total_energy += restore_e
                    active_time += restore_t
                    e = e - restore_e
                    # The uncommitted tail re-executes: regressing `work`
                    # makes the active phase redo it, re-accounting both
                    # its energy and its time.
                    reexec_energy += work - committed_work
                    work = committed_work
                    mode = "active"
                    continue
                e = min(e + p_in * seg_remaining, e_max)
            t += seg_remaining

        return ExecutionResult(
            scheme=profile.name,
            completed=True,
            work_target_j=work_target_j,
            useful_energy_j=work_target_j,
            total_energy_j=total_energy,
            active_time_s=active_time,
            wall_time_s=t,
            n_dips=n_dips,
            n_backups=n_backups,
            n_restores=n_restores,
            n_safe_recoveries=n_safe_recoveries,
            nvm_bits_written=n_backups * profile.commit_bits,
            nvm_bits_read=n_restores * profile.restore_bits,
            reexec_energy_j=reexec_energy,
        )

    # -- event helpers ------------------------------------------------------------

    def _commit_point(self, work: float) -> float:
        """Work level of the last crossed barrier at a commit.

        Checkpoint-granularity schemes (``reexec_window_j == 0``) commit
        the exact progress; DIAC commits the last barrier, losing the
        in-flight partition tail (``REEXECUTION_FRACTION`` of a window in
        expectation).
        """
        window = self.profile.reexec_window_j
        if window <= 0.0:
            return work
        return max(0.0, work - REEXECUTION_FRACTION * window)

