"""Central calibration constants for the DIAC reproduction.

Every tunable physical or behavioural constant used anywhere in the
reproduction lives in this module, so that the mapping between the paper's
experimental setup (Section IV) and our simulation substrate is auditable in
one place.

Units are SI unless the name says otherwise: joules, seconds, watts, farads,
volts.  Gate-level quantities use the 45 nm operating point the paper quotes
(NCSU PDK, HSPICE characterization); system-level quantities use the paper's
numbers directly (2 mF capacitor at 5 V, 2/4/9 mJ operation costs, ...).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# System-level energy storage (Section IV-A).
# ---------------------------------------------------------------------------

#: Storage capacitance of the sensor node, farads ("a capacitance of 2mF").
CAPACITANCE_F = 2e-3

#: Operational (fully charged) voltage, volts ("an operational voltage of 5V").
OPERATING_VOLTAGE_V = 5.0

#: Maximum storable energy, joules: E = C * V^2 / 2 = 25 mJ.
E_MAX_J = 0.5 * CAPACITANCE_F * OPERATING_VOLTAGE_V**2

# ---------------------------------------------------------------------------
# Atomic operation costs (Section IV-A): "the sense, compute, and transmit
# operations consume 2mJ, 4mJ, and 9mJ, respectively, all with a +/-10%
# uncertainty".
# ---------------------------------------------------------------------------

E_SENSE_J = 2e-3
E_COMPUTE_J = 4e-3
E_TRANSMIT_J = 9e-3

#: Relative half-width of the uniform uncertainty applied to operation costs.
OPERATION_UNCERTAINTY = 0.10

#: Nominal wall-clock durations of the atomic operations, seconds.  The paper
#: does not publish these; they are chosen so that duty cycles in Fig. 4's
#: regime (seconds-scale charging) look like the published timeline.
T_SENSE_S = 0.05
T_COMPUTE_S = 0.20
T_TRANSMIT_S = 0.30

# ---------------------------------------------------------------------------
# FSM thresholds (Section III-B / IV-A).  Ordering: Tr > Cp > Se > Safe > Bk
# > Off.  "the Th_SafeZone region exceeds the backup threshold by 2mJ".
# ---------------------------------------------------------------------------

TH_OFF_J = 1.5e-3
TH_BACKUP_J = 3.0e-3
SAFE_ZONE_MARGIN_J = 2.0e-3
TH_SAFE_J = TH_BACKUP_J + SAFE_ZONE_MARGIN_J
TH_SENSE_J = 6.0e-3
TH_COMPUTE_J = 8.0e-3
TH_TRANSMIT_J = 12.0e-3

#: Standby (sleep-state) leakage power of the node, watts.  Drives the
#: "minimal leakage current persists" backup trigger of Fig. 4 event (6).
SLEEP_LEAKAGE_W = 20e-6

#: Fraction of E_MAX stored when a simulation starts (the paper's Fig. 4
#: timeline begins with a partially charged capacitor).
INITIAL_ENERGY_FRACTION = 0.4

#: Default sampling interval of the sensor node (timer interrupt), seconds.
#: One full sense/compute/transmit round costs ~15 mJ, so at the tens-of-
#: microwatt harvest rates of Fig. 4 a sample is sustainable roughly every
#: couple of minutes.
SENSE_INTERVAL_S = 150.0

# ---------------------------------------------------------------------------
# 45 nm standard-cell operating point used by the synthesis surrogate.
# Figures are representative of published 45 nm characterizations (NCSU
# FreePDK45-class): delays in seconds, powers in watts.
# ---------------------------------------------------------------------------

#: Supply voltage of the logic fabric, volts (typical 45 nm nominal).
LOGIC_VDD_V = 1.0

#: Clock period assumed for sequential operation, seconds (250 MHz).
CLOCK_PERIOD_S = 4e-9

#: Fraction of a flip-flop's dynamic energy spent per clock even when the
#: datapath input does not toggle (clock-tree + internal clocking).
FF_CLOCK_ACTIVITY = 0.8

#: Default switching-activity factor for combinational gates.
DEFAULT_ACTIVITY = 0.2

# ---------------------------------------------------------------------------
# Non-volatile flip-flop (NV-FF) and LE-FF behavioural models (Section IV-B
# baselines).  Overheads are relative to a plain CMOS DFF.
# ---------------------------------------------------------------------------

#: NV-FF dynamic-energy overhead per clock (MTJ pair loading) vs CMOS DFF.
NVFF_DYNAMIC_OVERHEAD = 0.50

#: NV-FF clock-to-q / setup penalty, applied to the registered critical path.
NVFF_DELAY_OVERHEAD = 0.27

#: NV-FF leakage overhead vs CMOS DFF.
NVFF_STATIC_OVERHEAD = 0.20

#: NV-clustering (LE-FF, [7]): fraction of FFs remaining after clustering
#: (logic-embedded FFs merge state elements of a fan-in cone).
LEFF_STATE_RATIO = 0.85

#: LE-FF absorbs part of its fan-in logic: relative combinational energy
#: saved by embedding logic into the state element.
LEFF_LOGIC_SAVING = 0.01

#: LE-FF dynamic overhead per clock on the remaining state elements.
LEFF_DYNAMIC_OVERHEAD = 0.50

#: LE-FF delay penalty on the registered critical path.
LEFF_DELAY_OVERHEAD = 0.24

#: LE-FF leakage overhead vs CMOS DFF.
LEFF_STATIC_OVERHEAD = 0.15

# ---------------------------------------------------------------------------
# Backup/restore controller overheads (CACTI-style periphery, Section IV-A:
# "The memory controller and registers are designed and synthesized by
# Design Compiler").
# ---------------------------------------------------------------------------

#: Fixed controller energy per backup or restore event, joules.
BACKUP_CONTROLLER_E_J = 2.0e-12

#: Fixed controller latency per backup or restore event, seconds.
BACKUP_CONTROLLER_T_S = 2.0e-9

#: Width of the bus between the datapath and the backup NVM array, bits.
NVM_BUS_WIDTH_BITS = 64

# ---------------------------------------------------------------------------
# Intermittency statistics used by the Fig. 5 evaluation harness.
# ---------------------------------------------------------------------------

#: Number of reruns of a benchmark instance is chosen so that the macro-task
#: energy is this multiple of E_MAX (Section IV-C assumption (1): "it is
#: rerun multiple times till the total energy exceeds the capacity").
MACRO_TASK_ENERGY_RATIO = 4.0

#: Probability that an excursion below Th_Safe recovers before reaching
#: Th_Bk when the safe zone is enabled (Fig. 4 event (5) shows 3 recoveries
#: out of 4 excursions in the published trace).
SAFE_ZONE_RECOVERY_DEFAULT = 0.55

#: Expected fraction of a partition re-executed after a genuine power loss.
REEXECUTION_FRACTION = 0.5

# ---------------------------------------------------------------------------
# Circuit-scale evaluation system (Fig. 5 harness).  The Fig. 4 demo uses the
# paper's literal 25 mJ / 2 mF system; the Fig. 5 PDP evaluation instead
# scales the storage capacitor to each benchmark circuit so the paper's
# structure holds at the circuit's physical energy scale:
#
# * the backup reserve (Th_Bk - Th_Off, 6% of E_MAX in the paper) must cover
#   a worst-case full-state backup with margin, so E_MAX is sized as a
#   multiple of the full-state backup cost;
# * assumption (1) of Section IV-C makes the macro task energy a multiple
#   of E_MAX ("rerun multiple times till the total energy exceeds the
#   capacity").
# ---------------------------------------------------------------------------

#: E_MAX of the per-circuit evaluation capacitor, as a multiple of the
#: circuit's full-state NVM backup cost (paper: backup must fit in the 6%
#: reserve between Th_Bk and Th_Off, with ~2x margin).
FULL_BACKUP_MULTIPLE = 26.0

#: Threshold levels as fractions of E_MAX — exactly the paper's 25 mJ
#: system: Off 1.5, Bk 3, Safe 5, Se 6, Cp 8, Tr 12 (all /25).
THRESHOLD_FRACTIONS = {
    "off": 1.5 / 25.0,
    "backup": 3.0 / 25.0,
    "safe": 5.0 / 25.0,
    "sense": 6.0 / 25.0,
    "compute": 8.0 / 25.0,
    "transmit": 12.0 / 25.0,
}

#: Default NVM-barrier spacing budget, as a multiple of the circuit's
#: full-state backup cost (the efficiency/resiliency balance point: the
#: expected half-partition re-execution loss then matches the savings from
#: committing a narrow cut instead of the full state).
BARRIER_BUDGET_FACTOR = 1.0

#: Clock cycles per task instance.  A benchmark "instance" is a workload
#: of this many cycles of the circuit (processing one sample), matching
#: the paper's framing where an operand is a long-running task whose
#: energy dwarfs a single register commit (Fig. 2's worked example prices
#: operands in millijoules).
INSTANCE_CYCLES = 200

#: Retention leakage of volatile state kept alive through sleep (DIAC's
#: safe-zone path keeps CMOS registers powered), watts per bit.
SLEEP_RETENTION_W_PER_BIT = 5e-12

# ---------------------------------------------------------------------------
# Evaluation environment shape (Fig. 5 harness).  The harvest trace and
# sleep drain are expressed relative to the per-circuit capacitor so the
# same intermittency *structure* (duty cycles, safe-zone dip dynamics)
# appears at every circuit's energy scale — exactly how the paper's
# "predetermined sequence of voltage levels" is reused across benchmarks.
# ---------------------------------------------------------------------------

#: Harvest burst power as a fraction of the DIAC design's active power
#: (harvesting is orders of magnitude weaker than computation).
EVAL_HARVEST_FRACTION = 0.02

#: Reference segment duration: t_ref = this x e_max / p_ref, so a strong
#: 1.4-unit segment delivers ~0.35 e_max (a few duty cycles).
EVAL_T_REF_FACTOR = 0.25

#: Standby drain while parked in the safe zone, as a fraction of
#: e_max / t_ref.  Sets the decay time from Th_Safe to Th_Bk to ~0.6 t_ref:
#: dips that hit a strong segment recover, dips that hit dead air decay,
#: dips in a weak tail are held (weak power slightly exceeds the drain)
#: until the next strong segment rescues them.
EVAL_SLEEP_DRAIN_FACTOR = 0.13

# ---------------------------------------------------------------------------
# Suite profiles: flip-flop fraction and structure of generated circuits.
# ISCAS-89 are moderately sequential, ITC-99 are FSM/control heavy, MCNC are
# PLA/logic-dominated.
# ---------------------------------------------------------------------------

SUITE_FF_FRACTION = {
    "iscas89": 0.17,
    "itc99": 0.28,
    "mcnc": 0.08,
}

SUITE_AVG_FANIN = {
    "iscas89": 2.2,
    "itc99": 2.4,
    "mcnc": 3.0,
}
