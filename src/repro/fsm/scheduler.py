"""Power-aware task scheduling (the "Task Scheduler" of Fig. 3(b)).

Algorithm 1 ties the sampling interval to the harvest conditions: "Sleep
(interval) — interval is determined by the average charging rate" and
"this frequency can be reduced depending on the system's power".  This
module provides that adaptation: an EWMA estimator of the charging rate
and a scheduler that picks the sampling interval so the expected energy
per duty cycle is harvestable within it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.calibration import (
    E_COMPUTE_J,
    E_SENSE_J,
    E_TRANSMIT_J,
    SLEEP_LEAKAGE_W,
)


@dataclass
class ChargingRateEstimator:
    """Exponentially-weighted moving average of the harvest power.

    Attributes:
        alpha: smoothing factor in (0, 1]; higher reacts faster.
    """

    alpha: float = 0.2
    _estimate_w: float = field(default=0.0, repr=False)
    _initialized: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")

    def update(self, harvested_j: float, dt_s: float) -> float:
        """Fold one observation window into the estimate; returns it."""
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if harvested_j < 0:
            raise ValueError("harvested_j cannot be negative")
        sample = harvested_j / dt_s
        if not self._initialized:
            self._estimate_w = sample
            self._initialized = True
        else:
            self._estimate_w += self.alpha * (sample - self._estimate_w)
        return self._estimate_w

    @property
    def estimate_w(self) -> float:
        """Current charging-rate estimate, watts."""
        return self._estimate_w


@dataclass(frozen=True)
class DutyCycleBudget:
    """Energy demand of one full sense/compute/transmit round."""

    sense_j: float = E_SENSE_J
    compute_j: float = E_COMPUTE_J
    transmit_j: float = E_TRANSMIT_J
    sleep_power_w: float = SLEEP_LEAKAGE_W

    @property
    def round_energy_j(self) -> float:
        """Energy of one full operation round (excluding sleep)."""
        return self.sense_j + self.compute_j + self.transmit_j


class AdaptiveScheduler:
    """Chooses the sampling interval from the estimated charging rate.

    The sustainable interval satisfies::

        interval * (P_harvest - P_sleep) >= round_energy * margin

    i.e. a full round's energy must be harvestable (net of sleep leakage)
    within one interval, with a safety margin.

    Args:
        budget: the duty-cycle energy demand.
        min_interval_s: fastest sampling the application allows.
        max_interval_s: slowest sampling before data loses value.
        margin: over-provisioning factor (>= 1).
    """

    def __init__(
        self,
        budget: DutyCycleBudget | None = None,
        min_interval_s: float = 10.0,
        max_interval_s: float = 3600.0,
        margin: float = 1.2,
    ) -> None:
        if min_interval_s <= 0 or max_interval_s < min_interval_s:
            raise ValueError("need 0 < min_interval_s <= max_interval_s")
        if margin < 1.0:
            raise ValueError("margin must be >= 1")
        self.budget = budget or DutyCycleBudget()
        self.min_interval_s = min_interval_s
        self.max_interval_s = max_interval_s
        self.margin = margin

    def interval_for(self, charging_rate_w: float) -> float:
        """Sustainable sampling interval for a charging-rate estimate.

        Returns ``max_interval_s`` when the net harvest cannot sustain any
        duty cycle (the node samples as rarely as the application allows
        and relies on the FSM's backup path).
        """
        net = charging_rate_w - self.budget.sleep_power_w
        if net <= 0:
            return self.max_interval_s
        needed = self.budget.round_energy_j * self.margin / net
        return min(self.max_interval_s, max(self.min_interval_s, needed))

    def schedule(
        self,
        estimator: ChargingRateEstimator,
        harvested_j: float,
        dt_s: float,
    ) -> float:
        """Update the estimator with one window and return the interval."""
        return self.interval_for(estimator.update(harvested_j, dt_s))


def plan_intervals(
    harvest_powers_w: list[float],
    window_s: float = 60.0,
    scheduler: AdaptiveScheduler | None = None,
) -> list[float]:
    """Offline helper: intervals a node would pick along a power profile.

    Args:
        harvest_powers_w: per-window average harvest power samples.
        window_s: observation window length.
        scheduler: scheduler to use (defaults to paper-budget settings).

    Returns:
        One chosen interval per input window.
    """
    scheduler = scheduler or AdaptiveScheduler()
    estimator = ChargingRateEstimator()
    return [
        scheduler.schedule(estimator, power * window_s, window_s)
        for power in harvest_powers_w
    ]
