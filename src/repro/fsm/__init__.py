"""The intermittent-aware FSM runtime (paper Fig. 3, Algorithm 1)."""

from repro.fsm.controller import (
    FsmEvent,
    FsmResult,
    IntermittentController,
    OperationCosts,
)
from repro.fsm.interrupts import PowerInterrupt, TimerInterrupt
from repro.fsm.node import IntermittentSensorNode, SensorNodeConfig
from repro.fsm.scheduler import (
    AdaptiveScheduler,
    ChargingRateEstimator,
    DutyCycleBudget,
    plan_intervals,
)
from repro.fsm.states import REG_FLAG_WIDTH, NodeState, RegFlag

__all__ = [
    "AdaptiveScheduler",
    "ChargingRateEstimator",
    "DutyCycleBudget",
    "FsmEvent",
    "FsmResult",
    "IntermittentController",
    "IntermittentSensorNode",
    "NodeState",
    "OperationCosts",
    "PowerInterrupt",
    "REG_FLAG_WIDTH",
    "RegFlag",
    "SensorNodeConfig",
    "TimerInterrupt",
    "plan_intervals",
]
