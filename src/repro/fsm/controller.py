"""Time-stepped implementation of Algorithm 1 (the paper's state machine).

The controller advances in fixed steps ``dt``; each step harvests from the
trace, spends according to the current state, and applies the transition
rules of Algorithm 1 — including the two interrupt routines, the safe-zone
behaviour that distinguishes *optimized DIAC* from plain DIAC, and the
volatile-loss semantics below Th_Off.

The result object records a sampled (t, E, state) timeline — the data
behind Fig. 4 — plus event markers and operation counters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.calibration import (
    E_COMPUTE_J,
    E_SENSE_J,
    E_TRANSMIT_J,
    OPERATION_UNCERTAINTY,
    SENSE_INTERVAL_S,
    SLEEP_LEAKAGE_W,
    T_COMPUTE_S,
    T_SENSE_S,
    T_TRANSMIT_S,
)
from repro.energy.capacitor import EnergyStorage
from repro.energy.harvester import HarvestTrace
from repro.energy.thresholds import ThresholdSet
from repro.fsm.interrupts import PowerInterrupt, TimerInterrupt
from repro.fsm.states import REG_FLAG_WIDTH, NodeState, RegFlag
from repro.tech.cacti import MemoryArrayModel, backup_array_for
from repro.tech.nvm import MRAM, NvmTechnology


@dataclass(frozen=True)
class OperationCosts:
    """Energy/duration of the node's atomic operations (Section IV-A).

    Attributes:
        sense_j / compute_j / transmit_j: nominal energies.
        sense_s / compute_s / transmit_s: nominal durations.
        uncertainty: relative half-width of the uniform cost jitter
            ("all with a +/-10% uncertainty").
        compute_chunks / transmit_chunks: number of atomic sub-operations
            each long operation is divided into ("all operations ... are
            divided into atomic operations, which are executed
            uninterrupted").
        transmit_probability: chance a finished computation requires
            transmission (Algorithm 1, line 20).
    """

    sense_j: float = E_SENSE_J
    compute_j: float = E_COMPUTE_J
    transmit_j: float = E_TRANSMIT_J
    sense_s: float = T_SENSE_S
    compute_s: float = T_COMPUTE_S
    transmit_s: float = T_TRANSMIT_S
    uncertainty: float = OPERATION_UNCERTAINTY
    compute_chunks: int = 8
    transmit_chunks: int = 6
    transmit_probability: float = 1.0


@dataclass
class FsmEvent:
    """A notable event on the timeline (used by the Fig. 4 narration)."""

    t_s: float
    kind: str
    detail: str = ""


@dataclass
class FsmResult:
    """Output of one controller run.

    Attributes:
        timeline: sampled (time, stored energy, state) tuples.
        events: notable events in chronological order.
        counters: operation/interrupt counters.
    """

    timeline: list[tuple[float, float, NodeState]]
    events: list[FsmEvent]
    counters: dict[str, int]

    def count(self, kind: str) -> int:
        """Counter accessor that defaults to zero."""
        return self.counters.get(kind, 0)

    def events_of(self, kind: str) -> list[FsmEvent]:
        """All events of one kind."""
        return [e for e in self.events if e.kind == kind]

    def energy_series(self) -> tuple[list[float], list[float]]:
        """(times, energies) vectors for plotting."""
        return (
            [t for t, _e, _s in self.timeline],
            [e for _t, e, _s in self.timeline],
        )


class IntermittentController:
    """Algorithm 1 over a virtual energy source.

    Args:
        storage: the capacitor ("virtual battery").
        thresholds: the six-threshold set.
        trace: harvesting trace driving the charging rate.
        costs: atomic operation costs.
        technology: NVM used by the Backup state.
        state_bits: register bits a backup must save (Reg_Flag included).
        sense_interval_s: timer-interrupt period.
        safe_zone_enabled: True = optimized DIAC (Th_SafeZone honoured);
            False = plain DIAC (backup as soon as the active zone exits).
        sleep_leakage_w: standby drain in Sleep.
        seed: seeds the +/-10% operation-cost jitter.
        dt_s: simulation step.
    """

    def __init__(
        self,
        storage: EnergyStorage,
        thresholds: ThresholdSet,
        trace: HarvestTrace,
        costs: OperationCosts | None = None,
        technology: NvmTechnology = MRAM,
        state_bits: int = 64,
        sense_interval_s: float = SENSE_INTERVAL_S,
        safe_zone_enabled: bool = True,
        sleep_leakage_w: float = SLEEP_LEAKAGE_W,
        seed: int = 0,
        dt_s: float = 0.05,
    ) -> None:
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if state_bits < REG_FLAG_WIDTH:
            raise ValueError("state_bits must cover at least the Reg_Flag")
        self.storage = storage
        self.thresholds = thresholds
        self.trace = trace
        self.costs = costs or OperationCosts()
        self.technology = technology
        self.state_bits = state_bits
        self.array: MemoryArrayModel = backup_array_for(state_bits, technology)
        self.timer = TimerInterrupt(sense_interval_s)
        self.power_irq = PowerInterrupt(thresholds.backup_j)
        self.safe_zone_enabled = safe_zone_enabled
        self.sleep_leakage_w = sleep_leakage_w
        self.dt_s = dt_s
        self._rng = random.Random(seed)

        self.state = NodeState.SLEEP
        self.reg = RegFlag.HALT
        self._op_progress_j = 0.0
        self._op_target_j = 0.0
        self._op_power_w = 0.0
        self._chunk_j = 0.0
        self._committed_chunks = 0
        self._backed_up = False
        self._was_active_before_dip = False
        self._pending_restore = False

    # -- helpers ---------------------------------------------------------------

    def _jitter(self, nominal: float) -> float:
        """Apply the +/-uncertainty jitter to a nominal cost."""
        u = self.costs.uncertainty
        return nominal * (1.0 + u * (2.0 * self._rng.random() - 1.0))

    def _begin_operation(self, state: NodeState) -> None:
        """Latch jittered cost/duration for the operation being entered."""
        costs = self.costs
        if state is NodeState.SENSE:
            energy, duration, chunks = costs.sense_j, costs.sense_s, 1
        elif state is NodeState.COMPUTE:
            energy, duration, chunks = (
                costs.compute_j,
                costs.compute_s,
                costs.compute_chunks,
            )
        else:
            energy, duration, chunks = (
                costs.transmit_j,
                costs.transmit_s,
                costs.transmit_chunks,
            )
        target = self._jitter(energy)
        self._op_target_j = target
        self._op_power_w = target / duration
        self._chunk_j = target / chunks
        # Resume from committed chunks when re-entering a paused operation.
        self._op_progress_j = self._committed_chunks * self._chunk_j

    # -- main loop ---------------------------------------------------------------

    def run(
        self, duration_s: float, sample_every: int = 4
    ) -> FsmResult:
        """Simulate ``duration_s`` seconds of node operation."""
        timeline: list[tuple[float, float, NodeState]] = []
        events: list[FsmEvent] = []
        counters: dict[str, int] = {
            "senses": 0,
            "computes": 0,
            "transmits": 0,
            "backups": 0,
            "restores": 0,
            "shutdowns": 0,
            "safe_zone_entries": 0,
            "safe_zone_recoveries": 0,
            "nvm_bits_written": 0,
            "nvm_bits_read": 0,
            "timer_interrupts": 0,
            "power_interrupts": 0,
            "reached_e_max": 0,
        }
        th = self.thresholds
        dt = self.dt_s
        n_steps = int(round(duration_s / dt))
        in_safe_dip = False
        emax_latched = False

        for step in range(n_steps):
            t = step * dt
            # Harvest.
            self.storage.deposit(self.trace.power_at(t) * dt)
            if self.storage.is_full and not emax_latched:
                emax_latched = True
                counters["reached_e_max"] += 1
                events.append(FsmEvent(t, "e_max", "capacitor saturated"))
            elif emax_latched and self.storage.energy_j < 0.97 * self.storage.e_max_j:
                emax_latched = False

            # Timer interrupt (Algorithm 1 line 34).
            if self.timer.poll(t):
                counters["timer_interrupts"] += 1
                if self.reg is RegFlag.HALT and self.state in (
                    NodeState.SLEEP,
                    NodeState.OFF,
                ):
                    self.reg = RegFlag.SENSE

            e = self.storage.energy_j

            # Power-off handling (below Th_Off everything stops).
            if self.state is not NodeState.OFF and e < th.off_j:
                self.state = NodeState.OFF
                counters["shutdowns"] += 1
                events.append(FsmEvent(t, "shutdown", "E below Th_Off"))
                if not self._backed_up:
                    # Volatile contents are gone; uncommitted progress lost.
                    self._committed_chunks = 0
                    self.reg = RegFlag.HALT
                else:
                    self._pending_restore = True
                in_safe_dip = False
                continue
            if self.state is NodeState.OFF:
                if e >= th.safe_j:
                    self.state = NodeState.SLEEP
                    if self._pending_restore:
                        cost = self.array.read_cost(self.state_bits)
                        self.storage.drain(cost.energy_j)
                        counters["restores"] += 1
                        counters["nvm_bits_read"] += self.state_bits
                        events.append(FsmEvent(t, "restore", "state from NVM"))
                        self._pending_restore = False
                        self._backed_up = False
                    events.append(FsmEvent(t, "wakeup", "E recovered"))
                continue

            # Power interrupt (Algorithm 1 line 38): backup below Th_Bk.
            if self.power_irq.poll(e) and self.state in (
                NodeState.SLEEP,
                NodeState.SENSE,
                NodeState.COMPUTE,
                NodeState.TRANSMIT,
            ):
                counters["power_interrupts"] += 1
                if not self._backed_up:
                    self._do_backup(t, counters, events)
                in_safe_dip = False
                continue

            if self.state is NodeState.SLEEP:
                self.storage.drain(self.sleep_leakage_w * dt)
                e = self.storage.energy_j
                # Safe-zone bookkeeping (Fig. 4 event 5).
                if (self._was_active_before_dip and not in_safe_dip
                        and th.backup_j <= e < th.safe_j):
                    in_safe_dip = True
                    counters["safe_zone_entries"] += 1
                    events.append(FsmEvent(t, "safe_zone", "entered"))
                if not self.safe_zone_enabled and in_safe_dip:
                    # Plain DIAC: no safe zone — back up immediately.
                    self._do_backup(t, counters, events)
                    in_safe_dip = False
                    continue
                # Transitions out of Sleep (Algorithm 1 lines 6-11).
                nxt: NodeState | None = None
                if self.reg is RegFlag.SENSE and e > th.sense_j:
                    nxt = NodeState.SENSE
                elif self.reg is RegFlag.COMPUTE and e > th.compute_j:
                    nxt = NodeState.COMPUTE
                elif self.reg is RegFlag.TRANSMIT and e > th.transmit_j:
                    nxt = NodeState.TRANSMIT
                if nxt is not None:
                    if in_safe_dip:
                        counters["safe_zone_recoveries"] += 1
                        events.append(
                            FsmEvent(t, "safe_zone_recovery", "no NVM write")
                        )
                        in_safe_dip = False
                    self.state = nxt
                    self._begin_operation(nxt)

            elif self.state is NodeState.SENSE:
                done = self._advance_operation(dt)
                if done:
                    counters["senses"] += 1
                    self.reg = RegFlag.COMPUTE
                    self._finish_operation()
                    events.append(FsmEvent(t, "sense", "sample acquired"))

            elif self.state is NodeState.COMPUTE:
                if self.storage.energy_j <= th.safe_j:
                    self._pause_operation(t, events)
                    in_safe_dip = False
                    continue
                done = self._advance_operation(dt)
                if done:
                    counters["computes"] += 1
                    if self._rng.random() < self.costs.transmit_probability:
                        self.reg = RegFlag.TRANSMIT
                    else:
                        self.reg = RegFlag.HALT
                    self._finish_operation()
                    events.append(FsmEvent(t, "compute", "result ready"))

            elif self.state is NodeState.TRANSMIT:
                if self.storage.energy_j <= th.safe_j:
                    self._pause_operation(t, events)
                    in_safe_dip = False
                    continue
                done = self._advance_operation(dt)
                if done:
                    counters["transmits"] += 1
                    self.reg = RegFlag.HALT
                    self._finish_operation()
                    events.append(FsmEvent(t, "transmit", "packet sent"))

            if step % sample_every == 0:
                timeline.append((t, self.storage.energy_j, self.state))

        timeline.append((n_steps * dt, self.storage.energy_j, self.state))
        return FsmResult(timeline=timeline, events=events, counters=counters)

    # -- operation mechanics ---------------------------------------------------

    def _advance_operation(self, dt: float) -> bool:
        """Consume one step of the running operation; True when finished."""
        spend = min(self._op_power_w * dt, self._op_target_j - self._op_progress_j)
        spend = min(spend, self.storage.energy_j)
        self.storage.drain(spend)
        self._op_progress_j += spend
        self._committed_chunks = int(self._op_progress_j / self._chunk_j)
        # Any new activity invalidates the last backup image.
        self._backed_up = False
        return self._op_progress_j >= self._op_target_j - 1e-15

    def _pause_operation(self, t: float, events: list[FsmEvent]) -> None:
        """Exit an active state at Th_SafeZone (dashed-blue arrows)."""
        self.state = NodeState.SLEEP
        self._was_active_before_dip = True
        events.append(FsmEvent(t, "pause", "active state exited at Th_Safe"))

    def _finish_operation(self) -> None:
        """Reset per-operation bookkeeping and return to Sleep."""
        self.state = NodeState.SLEEP
        self._op_progress_j = 0.0
        self._op_target_j = 0.0
        self._committed_chunks = 0
        self._was_active_before_dip = False

    def _do_backup(
        self, t: float, counters: dict[str, int], events: list[FsmEvent]
    ) -> None:
        """Backup state: commit registers to NVM (Algorithm 1 lines 38-41)."""
        self.state = NodeState.BACKUP
        cost = self.array.write_cost(self.state_bits)
        self.storage.drain(cost.energy_j)
        counters["backups"] += 1
        counters["nvm_bits_written"] += self.state_bits
        events.append(FsmEvent(t, "backup", f"{self.state_bits} bits to NVM"))
        self._backed_up = True
        self.state = NodeState.SLEEP
