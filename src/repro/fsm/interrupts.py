"""Interrupt sources of Algorithm 1.

Two interrupt routines exist (lines 34 and 38): the **timer** interrupt
fires at the sampling interval and re-arms a sense when the node is idle;
the **power** interrupt fires when the stored energy sinks below the backup
threshold and forces the backup state.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TimerInterrupt:
    """Periodic sampling-rate interrupt (Algorithm 1, line 34).

    Attributes:
        interval_s: nominal firing period ("the maximum sampling rate of
            the system ... this frequency can be reduced depending on the
            system's power").
    """

    interval_s: float
    _next_fire_s: float = field(default=0.0, repr=False)
    fired: int = 0

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self._next_fire_s = self.interval_s

    def poll(self, t_s: float) -> bool:
        """True exactly once per elapsed interval."""
        if t_s + 1e-12 >= self._next_fire_s:
            while self._next_fire_s <= t_s + 1e-12:
                self._next_fire_s += self.interval_s
            self.fired += 1
            return True
        return False

    def slow_down(self, factor: float) -> None:
        """Reduce the sampling rate (power-aware adaptation)."""
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        self.interval_s *= factor


@dataclass
class PowerInterrupt:
    """Backup-threshold interrupt (Algorithm 1, line 38).

    Fires on the *downward crossing* of the threshold: it re-arms only
    after the energy recovers a hysteresis margin above the threshold, so
    a system flickering around Th_Bk does not back up repeatedly.
    """

    threshold_j: float
    rearm_fraction: float = 1.05
    _armed: bool = field(default=True, repr=False)
    fired: int = 0

    def __post_init__(self) -> None:
        if self.threshold_j <= 0:
            raise ValueError("threshold_j must be positive")
        if self.rearm_fraction < 1.0:
            raise ValueError("rearm_fraction must be >= 1")

    def poll(self, energy_j: float) -> bool:
        """True on an armed downward crossing of the threshold."""
        if self._armed and energy_j < self.threshold_j:
            self._armed = False
            self.fired += 1
            return True
        if not self._armed and energy_j >= self.threshold_j * self.rearm_fraction:
            self._armed = True
        return False
