"""FSM states and the Reg_Flag register (paper Fig. 3(a), Algorithm 1)."""

from __future__ import annotations

import enum


class NodeState(enum.Enum):
    """Operating states of the intermittent-aware node.

    ``States = [Sp, Se, Cp, Tr, Bk]`` (Algorithm 1, line 1) plus the
    implicit powered-off condition below Th_Off.
    """

    SLEEP = "Sp"
    SENSE = "Se"
    COMPUTE = "Cp"
    TRANSMIT = "Tr"
    BACKUP = "Bk"
    OFF = "Off"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class RegFlag(enum.IntEnum):
    """The 3-bit next-operation register of Fig. 3(a).

    ``R0 R1 R2`` one-hot encoding: 0b100 requests Sense, 0b010 requests
    Compute, 0b001 requests Transmit; 0b000 halts progression until the
    timer interrupt re-arms a sense.
    """

    HALT = 0b000
    SENSE = 0b100
    COMPUTE = 0b010
    TRANSMIT = 0b001

    @property
    def requested_state(self) -> NodeState:
        """The operating state this flag requests from Sleep."""
        mapping = {
            RegFlag.SENSE: NodeState.SENSE,
            RegFlag.COMPUTE: NodeState.COMPUTE,
            RegFlag.TRANSMIT: NodeState.TRANSMIT,
            RegFlag.HALT: NodeState.SLEEP,
        }
        return mapping[self]


#: Number of bits in the Reg_Flag register (backed up with every commit).
REG_FLAG_WIDTH = 3
