"""The intermittent-aware sensor node (paper Fig. 3(b)).

Composes the pieces of the block diagram: an energy-harvesting front end
(trace), a power-management unit (storage + thresholds + power interrupt),
a processing unit (optionally a DIAC-synthesized design standing in for the
accelerator/microprocessor), and the task-scheduler FSM of Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration import INITIAL_ENERGY_FRACTION, SENSE_INTERVAL_S
from repro.core.diac import DiacDesign
from repro.energy.capacitor import EnergyStorage
from repro.energy.harvester import HarvestTrace
from repro.energy.thresholds import ThresholdSet
from repro.fsm.controller import (
    FsmResult,
    IntermittentController,
    OperationCosts,
)
from repro.tech.nvm import MRAM, NvmTechnology


@dataclass(frozen=True)
class SensorNodeConfig:
    """Configuration of an intermittent-aware sensor node.

    Attributes:
        thresholds: FSM threshold set (paper defaults when omitted).
        costs: atomic-operation costs (paper's 2/4/9 mJ when omitted).
        technology: NVM technology of the backup path.
        state_bits: register-file bits saved by a backup.
        sense_interval_s: sampling period of the timer interrupt.
        safe_zone_enabled: optimized (True) vs plain (False) DIAC runtime.
        initial_energy_fraction: starting charge as a fraction of E_MAX.
        seed: jitter seed.
        dt_s: simulation step.
    """

    thresholds: ThresholdSet | None = None
    costs: OperationCosts | None = None
    technology: NvmTechnology = MRAM
    state_bits: int = 64
    sense_interval_s: float = SENSE_INTERVAL_S
    safe_zone_enabled: bool = True
    initial_energy_fraction: float = INITIAL_ENERGY_FRACTION
    seed: int = 0
    dt_s: float = 0.05


class IntermittentSensorNode:
    """A batteryless sensor node driven by a harvest trace.

    Args:
        trace: the energy source.
        config: node configuration.
        design: optional DIAC design; when given, the compute operation's
            register width is taken from the design's commit schedule
            ("the backup unit stores all the necessary intermediate
            registers based on the register flag").
    """

    def __init__(
        self,
        trace: HarvestTrace,
        config: SensorNodeConfig | None = None,
        design: DiacDesign | None = None,
    ) -> None:
        self.trace = trace
        self.config = config or SensorNodeConfig()
        self.design = design
        thresholds = self.config.thresholds or ThresholdSet.paper_defaults()
        self.thresholds = thresholds
        state_bits = self.config.state_bits
        technology = self.config.technology
        if design is not None:
            state_bits = max(design.plan.max_commit_bits, state_bits)
            technology = design.config.technology
        self.storage = EnergyStorage(
            e_max_j=thresholds.e_max_j,
            energy_j=self.config.initial_energy_fraction * thresholds.e_max_j,
        )
        self.controller = IntermittentController(
            storage=self.storage,
            thresholds=thresholds,
            trace=trace,
            costs=self.config.costs,
            technology=technology,
            state_bits=state_bits,
            sense_interval_s=self.config.sense_interval_s,
            safe_zone_enabled=self.config.safe_zone_enabled,
            seed=self.config.seed,
            dt_s=self.config.dt_s,
        )

    def run(self, duration_s: float, sample_every: int = 4) -> FsmResult:
        """Simulate the node for ``duration_s`` seconds."""
        return self.controller.run(duration_s, sample_every=sample_every)
