"""The Fig. 5 evaluation harness.

Glues the whole reproduction together: synthesize a circuit with DIAC,
derive the per-circuit evaluation environment (capacitor, thresholds,
harvest trace), build the four scheme profiles, run the intermittent
executor on the identical macro task, and report normalized PDP.

Environment derivation (see calibration module for the rationale):

* ``E_MAX = FULL_BACKUP_MULTIPLE x (full-state backup cost)`` — the
  backup reserve between Th_Bk and Th_Off must cover a worst-case commit
  with margin, exactly as the paper's 25 mJ system is provisioned;
* thresholds keep the paper's proportions (1.5/3/5/6/8/12 over 25);
* the macro task is ``MACRO_TASK_ENERGY_RATIO x E_MAX`` of DIAC-work,
  converted to a pass count so every scheme executes the same number of
  circuit evaluations (Section IV-C assumption (1));
* the harvest trace and the safe-zone sleep drain scale with the circuit
  so the same intermittency structure appears at every energy scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.baselines.schemes import all_profiles
from repro.calibration import (
    EVAL_HARVEST_FRACTION,
    EVAL_SLEEP_DRAIN_FACTOR,
    EVAL_T_REF_FACTOR,
    FULL_BACKUP_MULTIPLE,
    MACRO_TASK_ENERGY_RATIO,
)
from repro.circuits.netlist import Netlist
from repro.core.diac import DiacConfig, DiacDesign, DiacSynthesizer
from repro.energy.harvester import HarvestTrace
from repro.energy.scenarios import ScenarioSpec, build_scenario_trace
from repro.energy.thresholds import ThresholdSet
from repro.sim.intermittent import (
    ExecutionResult,
    IntermittentExecutor,
    SchemeProfile,
)
from repro.suite.registry import BY_NAME, load_circuit


@dataclass(frozen=True)
class Environment:
    """Per-circuit evaluation environment.

    Attributes:
        e_max_j: capacity of the evaluation capacitor.
        thresholds: scaled threshold set.
        trace: harvest trace at the circuit's scale.
        sleep_drain_w: safe-zone standby drain.
        n_passes: macro-task length in circuit evaluations.
    """

    e_max_j: float
    thresholds: ThresholdSet
    trace: HarvestTrace
    sleep_drain_w: float
    n_passes: int


def build_environment(
    design: DiacDesign, scenario: ScenarioSpec | None = None
) -> Environment:
    """Derive the evaluation environment for one synthesized design.

    The capacitor is sized against the *reference* (MRAM) backup cost of
    the design's architectural state, regardless of which NVM the design
    under test uses: the storage capacitor is a device-level provision,
    so NVM-technology ablations swap the memory inside a fixed energy
    environment (Section IV-C).

    Args:
        design: the synthesized design to size the environment for.
        scenario: which harvest environment to materialize at the
            circuit's energy scale (see :mod:`repro.energy.scenarios`);
            ``None`` keeps the paper's Fig. 5 trace.
    """
    from repro.baselines.schemes import profile_diac
    from repro.tech.cacti import backup_array_for
    from repro.tech.nvm import MRAM

    reference = profile_diac(design)
    ref_array = backup_array_for(design.state_bits, MRAM)
    ref_backup_j = ref_array.write_cost(design.state_bits).energy_j
    e_max = FULL_BACKUP_MULTIPLE * ref_backup_j
    thresholds = ThresholdSet.from_e_max(e_max)
    p_ref = EVAL_HARVEST_FRACTION * reference.active_power_w
    t_ref = EVAL_T_REF_FACTOR * e_max / p_ref
    trace = build_scenario_trace(scenario or ScenarioSpec(), p_ref, t_ref)
    sleep_drain = EVAL_SLEEP_DRAIN_FACTOR * e_max / t_ref
    n_passes = max(
        1,
        math.ceil(MACRO_TASK_ENERGY_RATIO * e_max / reference.pass_energy_j),
    )
    return Environment(
        e_max_j=e_max,
        thresholds=thresholds,
        trace=trace,
        sleep_drain_w=sleep_drain,
        n_passes=n_passes,
    )


@dataclass
class CircuitEvaluation:
    """All four schemes' results for one circuit.

    Attributes:
        name: circuit name.
        suite: suite name ("custom" for off-roster circuits).
        design: the DIAC design used for the DIAC/optimized rows.
        environment: the shared evaluation environment.
        results: scheme name -> execution result.
    """

    name: str
    suite: str
    design: DiacDesign
    environment: Environment
    results: dict[str, ExecutionResult] = field(default_factory=dict)

    def pdp(self, scheme: str) -> float:
        """Raw PDP of one scheme."""
        return self.results[scheme].pdp_js

    def normalized_pdp(self, baseline: str = "NV-based") -> dict[str, float]:
        """PDP of every scheme normalized to ``baseline`` (Fig. 5 view)."""
        base = self.pdp(baseline)
        return {name: r.pdp_js / base for name, r in self.results.items()}

    def improvement_pct(self, scheme: str, versus: str) -> float:
        """PDP improvement of ``scheme`` over ``versus``, percent."""
        return 100.0 * (1.0 - self.pdp(scheme) / self.pdp(versus))


def evaluate_design(
    design: DiacDesign,
    name: str | None = None,
    suite: str | None = None,
    profiles: list[SchemeProfile] | None = None,
    environment: Environment | None = None,
) -> CircuitEvaluation:
    """Run the four-scheme comparison for one synthesized design.

    Args:
        design: the synthesized design under test.
        name: circuit name override (defaults to the netlist name).
        suite: suite label override.
        profiles: scheme profiles to run (all four when omitted).
        environment: evaluation environment override — the DSE uses this
            to apply threshold scaling without re-deriving the capacitor.
    """
    env = environment or build_environment(design)
    circuit_name = name or design.netlist.name
    info = BY_NAME.get(circuit_name)
    evaluation = CircuitEvaluation(
        name=circuit_name,
        suite=suite or (info.suite if info else "custom"),
        design=design,
        environment=env,
    )
    profs = list(profiles) if profiles is not None else all_profiles(design)
    # Multi-scheme comparisons route through the batch executor when the
    # vector kernel is enabled (bit-identical results either way; a
    # failing scheme raises exactly like the sequential loop below).
    from repro.dse.batch import batch_routing_enabled

    if len(profs) > 1 and batch_routing_enabled():
        from repro.dse.batch import LaneSpec, run_batch

        outcomes = run_batch(
            [
                LaneSpec(
                    profile=profile,
                    e_max_j=env.e_max_j,
                    trace=env.trace,
                    thresholds=env.thresholds,
                    sleep_drain_w=env.sleep_drain_w,
                    work_target_j=env.n_passes * profile.pass_energy_j,
                )
                for profile in profs
            ]
        )
        for profile, result in zip(profs, outcomes):
            evaluation.results[profile.name] = result
        return evaluation
    for profile in profs:
        executor = IntermittentExecutor(
            profile,
            e_max_j=env.e_max_j,
            trace=env.trace,
            thresholds=env.thresholds,
            sleep_drain_w=env.sleep_drain_w,
        )
        work = env.n_passes * profile.pass_energy_j
        evaluation.results[profile.name] = executor.run(work_target_j=work)
    return evaluation


def evaluate_circuit(
    circuit: str | Netlist,
    config: DiacConfig | None = None,
) -> CircuitEvaluation:
    """Synthesize and evaluate one circuit (by roster name or netlist)."""
    if isinstance(circuit, str):
        netlist = load_circuit(circuit)
    else:
        netlist = circuit
    design = DiacSynthesizer(config).run(netlist)
    return evaluate_design(design)


def evaluate_suite(
    names: list[str],
    config: DiacConfig | None = None,
) -> list[CircuitEvaluation]:
    """Evaluate a list of roster circuits.

    When the batch kernel is enabled the executor runs of *all* circuits
    and schemes are pooled into one :func:`repro.dse.batch.run_batch`
    call (synthesis stays per-circuit); results are bit-identical to the
    sequential path, and a failing run raises the same error the
    sequential loop would hit first.
    """
    from repro.dse.batch import batch_routing_enabled

    if len(names) <= 1 or not batch_routing_enabled():
        return [evaluate_circuit(name, config=config) for name in names]

    from repro.dse.batch import LaneSpec, run_batch

    evaluations: list[CircuitEvaluation] = []
    lanes: list[LaneSpec] = []
    slots: list[tuple[CircuitEvaluation, str]] = []
    for circuit_name in names:
        netlist = load_circuit(circuit_name)
        design = DiacSynthesizer(config).run(netlist)
        env = build_environment(design)
        info = BY_NAME.get(design.netlist.name)
        evaluation = CircuitEvaluation(
            name=design.netlist.name,
            suite=info.suite if info else "custom",
            design=design,
            environment=env,
        )
        evaluations.append(evaluation)
        for profile in all_profiles(design):
            lanes.append(
                LaneSpec(
                    profile=profile,
                    e_max_j=env.e_max_j,
                    trace=env.trace,
                    thresholds=env.thresholds,
                    sleep_drain_w=env.sleep_drain_w,
                    work_target_j=env.n_passes * profile.pass_energy_j,
                )
            )
            slots.append((evaluation, profile.name))
    for (evaluation, scheme), result in zip(slots, run_batch(lanes)):
        evaluation.results[scheme] = result
    return evaluations
