"""Command-line interface — the "prototyped DIAC design tool".

Usage (after ``pip install -e .``)::

    python -m repro roster                         # list the Fig. 5 roster
    python -m repro synth s27                      # run the DIAC pipeline
    python -m repro synth path/to/design.bench     # ... on your own netlist
    python -m repro evaluate s298 --policy 3       # four-scheme comparison
    python -m repro sweep b10                      # design-space exploration
    python -m repro sweep s27 b02 --workers 4 \
        --results out.jsonl --resume               # parallel, resumable sweep
    python -m repro sweep s27 --scenario paper-fig5 rf-markov@7 \
        --safe-zone on                             # cross-environment sweep
    python -m repro sweep s27 --strategy random --samples 16 \
        --threshold-scales 0.9 1.2                 # adaptive search
    python -m repro sweep s27 --strategy halving --samples 24 \
        --generations 3                            # screen, then promote
    python -m repro sweep s27 --results out.sqlite \
        --store-backend sqlite                     # indexed SQLite store
    python -m repro store stats out.sqlite         # store summary
    python -m repro store migrate out.jsonl out.sqlite  # JSONL <-> SQLite
    python -m repro sweep s27 --strategy halving --samples 24 \
        --analysis-prune                           # static round 0
    python -m repro sweep --config sweep.toml s27  # flags > file > defaults
    python -m repro sweep b10 --dump-config        # print merged TOML
    python -m repro coordinator s27 --results svc.sqlite \
        --spawn-workers 4                          # distributed sweep
    python -m repro worker --queue svc.sqlite \
        --results svc.sqlite                       # extra worker, any host
    python -m repro view svc.sqlite --port 8750    # read-only HTTP view
    python -m repro lint                           # lint the full roster
    python -m repro lint my.bench bad.json --deep  # netlists + configs
    python -m repro scenarios list                 # harvest environments
    python -m repro scenarios show rf-markov --seed 7
    python -m repro scenarios plot office-solar    # ASCII power profile
    python -m repro fig4                           # the Fig. 4 timeline
    python -m repro perf run --quick               # time the hot paths
    python -m repro perf compare BENCH_4.json BENCH_5.json \
        --max-regression 0.2                       # regression gate
    python -m repro perf history                   # BENCH_*.json trend

Netlist arguments accept roster names, ``.bench`` files, or ``.blif``
files.  Scenario arguments accept registry names (``scenarios list``),
optionally seeded/scaled as ``name[@seed[@scale]]``, or paths to measured
``.csv``/``.jsonl`` power logs.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path

from repro.baselines import SCHEME_ORDER
from repro.circuits import load_bench, load_blif
from repro.circuits.netlist import Netlist
from repro.core import DiacConfig, DiacSynthesizer
from repro.evaluation import evaluate_design
from repro.metrics import format_table
from repro.suite import BY_NAME, ROSTER, load_circuit
from repro.tech import get_technology

#: Mirrors :data:`repro.dse.strategies.STRATEGIES`; kept literal so the
#: parser builds without importing the (heavier) DSE package.
_STRATEGY_CHOICES = ("grid", "random", "lhs", "halving", "evolution")


def _resolve_netlist(spec: str) -> Netlist:
    """Roster name, .bench path, or .blif path -> netlist."""
    path = Path(spec)
    if path.suffix == ".bench" and path.exists():
        return load_bench(path)
    if path.suffix in (".blif", ".mcnc") and path.exists():
        return load_blif(path)
    if spec in BY_NAME:
        return load_circuit(spec)
    raise SystemExit(
        f"error: {spec!r} is neither a roster circuit nor an existing "
        f".bench/.blif file; roster: {', '.join(sorted(BY_NAME))}"
    )


def _config_from_args(args: argparse.Namespace) -> DiacConfig:
    return DiacConfig(
        policy=args.policy,
        technology=get_technology(args.nvm),
        use_safe_zone=not args.no_safe_zone,
        validate=not args.no_validate,
    )


def cmd_roster(_args: argparse.Namespace) -> int:
    rows = [
        [b.name, b.suite, b.n_gates, b.function, b.style] for b in ROSTER
    ]
    print(
        format_table(
            ["circuit", "suite", "gates", "function", "style"],
            rows,
            title="Fig. 5 benchmark roster",
        )
    )
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    netlist = _resolve_netlist(args.circuit)
    design = DiacSynthesizer(_config_from_args(args)).run(netlist)
    print(design.report_text())
    if args.emit_verilog:
        out = Path(args.emit_verilog)
        out.write_text(design.code.verilog)
        print(f"\nwrote NV-enhanced HDL to {out}")
    if not design.code.timing.passed:
        for violation in design.code.timing.violations:
            print(f"TIMING VIOLATION: {violation}", file=sys.stderr)
        return 1
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    netlist = _resolve_netlist(args.circuit)
    design = DiacSynthesizer(_config_from_args(args)).run(netlist)
    evaluation = evaluate_design(design)
    norm = evaluation.normalized_pdp()
    rows = [
        [
            scheme,
            f"{evaluation.results[scheme].total_energy_j:.3e}",
            f"{evaluation.results[scheme].active_time_s:.3e}",
            evaluation.results[scheme].n_backups,
            f"{norm[scheme]:.3f}",
        ]
        for scheme in SCHEME_ORDER
    ]
    print(
        format_table(
            ["scheme", "energy (J)", "busy time (s)", "backups", "norm. PDP"],
            rows,
            title=f"{netlist.name}: four-scheme comparison",
        )
    )
    return 0


def _scenario_exit(error: Exception) -> SystemExit:
    """A scenario lookup/parse error as a clean CLI exit."""
    message = error.args[0] if error.args else error
    return SystemExit(f"error: {message}")


#: ``(argparse dest, config section, config key)`` for every sweep
#: option that participates in the config-file merge.  Explicit CLI
#: values beat ``--config`` file values beat the defaults of
#: :data:`repro.dse.request.CONFIG_DEFAULTS` — which is why every
#: grouped flag below parses with ``default=None``: "not given" must
#: stay distinguishable from any real value.
_ARG_TO_CONFIG = (
    ("circuits", "space", "circuits"),
    ("policies", "space", "policies"),
    ("budget_scales", "space", "budget_scales"),
    ("nvm", "space", "technologies"),
    ("criteria", "space", "criteria"),
    ("safe_zone", "space", "safe_zone"),
    ("threshold_scales", "space", "threshold_scales"),
    ("safe_margin_scales", "space", "safe_margin_scales"),
    ("scenario", "scenarios", "scenarios"),
    ("strategy", "search", "strategy"),
    ("samples", "search", "samples"),
    ("generations", "search", "generations"),
    ("search_seed", "search", "seed"),
    ("analysis_prune", "analysis", "prune"),
    ("workers", "execution", "workers"),
    ("max_attempts", "execution", "max_attempts"),
    ("batch_timeout", "execution", "batch_timeout"),
    ("results", "store", "results"),
    ("store_backend", "store", "backend"),
    ("fsync_every", "store", "fsync_every"),
    ("resume", "store", "resume"),
)


def _overrides_from_args(args: argparse.Namespace) -> dict:
    """The explicitly-given sweep flags, as nested config sections."""
    overrides: dict = {}
    for attr, section, key in _ARG_TO_CONFIG:
        value = getattr(args, attr, None)
        if value is None:
            continue
        if attr == "circuits" and not value:
            continue  # empty positional: let the config file name them
        overrides.setdefault(section, {})[key] = value
    return overrides


def _merged_sweep_config(args: argparse.Namespace) -> dict:
    """Layer CLI flags over ``--config`` (if any) over the defaults."""
    from repro.dse.request import load_config_file, merge_config

    try:
        file_config = (
            load_config_file(args.config) if args.config else {}
        )
        return merge_config(file_config, _overrides_from_args(args))
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None


def _request_from_merged(merged: dict):
    """The :class:`~repro.dse.request.SweepRequest` a config describes."""
    from repro.dse.request import request_from_config

    try:
        return request_from_config(merged)
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None


def _parse_fault_plan(args: argparse.Namespace):
    """Build the chaos plan of ``--inject-faults``, or ``None``.

    The trip-state directory defaults to a fresh temp dir per run, so
    back-to-back chaos invocations re-arm their faults; pass
    ``--fault-dir`` to share state across runs on purpose.
    """
    import tempfile

    from repro.dse import FaultPlan

    if not args.inject_faults:
        return None
    state_dir = args.fault_dir or tempfile.mkdtemp(prefix="repro-faults-")
    try:
        plan = FaultPlan.parse(args.inject_faults, state_dir)
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None
    print(
        f"injecting faults: {plan.describe()} (state: {plan.state_dir})",
        file=sys.stderr,
    )
    return plan


def _resilience_config(max_attempts: int, batch_timeout, fault_plan):
    from repro.dse import ResilienceConfig, RetryPolicy

    try:
        return ResilienceConfig(
            retry=RetryPolicy(max_attempts=max_attempts),
            batch_timeout_s=batch_timeout,
            fault_plan=fault_plan,
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None


def _validate_sweep_config(merged: dict) -> None:
    """Residual checks whose messages name the flags users typed."""
    execution, store_cfg = merged["execution"], merged["store"]
    if execution["workers"] < 1:
        raise SystemExit("error: --workers must be >= 1")
    if store_cfg["resume"] and not store_cfg["results"]:
        raise SystemExit("error: --resume requires --results")
    if merged["search"]["samples"] < 1:
        raise SystemExit("error: --samples must be >= 1")
    if merged["search"]["generations"] < 1:
        raise SystemExit("error: --generations must be >= 1")
    if store_cfg["fsync_every"] < 0:
        raise SystemExit("error: --fsync-every must be >= 0")


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.dse import SweepEngine, open_store
    from repro.dse.request import dump_config

    merged = _merged_sweep_config(args)
    if args.dump_config:
        print(dump_config(merged), end="")
        return 0
    _validate_sweep_config(merged)
    request = _request_from_merged(merged)
    execution, store_cfg = merged["execution"], merged["store"]
    netlists = {
        name: _resolve_netlist(name) for name in request.spec.circuits
    }
    fault_plan = _parse_fault_plan(args)
    store = (
        open_store(
            store_cfg["results"],
            backend=store_cfg["backend"],
            fsync_every=store_cfg["fsync_every"],
            fault_plan=fault_plan,
        )
        if store_cfg["results"]
        else None
    )
    engine = SweepEngine(
        workers=execution["workers"],
        store=store,
        resilience=_resilience_config(
            execution["max_attempts"],
            execution["batch_timeout"],
            fault_plan,
        ),
    )
    try:
        result = engine.submit(request, netlists=netlists)
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None
    return _report_sweep(result, request, args.robustness_top)


def _report_sweep(result, request, robustness_top: int) -> int:
    """Render one sweep result; shared by ``sweep`` and ``coordinator``."""
    from repro.metrics import format_robustness

    spec = request.spec
    strategy_name = request.strategy_name or "custom"
    # Distinct environments, not raw spec count: equivalent specs
    # (e.g. 'rf-markov@7' and 'rf-markov@7x1.0') dedupe to one scenario,
    # and a one-environment "robustness" table would be meaningless.
    multi_scenario = len(set(spec.scenarios)) > 1
    rows = [
        [
            r.circuit,
            *([r.scenario.label()] if multi_scenario else []),
            r.point.label(),
            r.n_barriers,
            r.n_backups,
            f"{r.reexec_energy_j:.3e}",
            f"{r.pdp_js:.3e}",
        ]
        for r in sorted(result.records, key=lambda r: r.pdp_js)
    ]
    title = f"{', '.join(spec.circuits)}: design-space sweep"
    print(
        format_table(
            ["circuit",
             *(["scenario"] if multi_scenario else []),
             "design point", "barriers", "backups",
             "re-exec (J)", "PDP (Js)"],
            rows,
            title=title,
        )
    )

    if result.failures:
        print("\nfailed points (skipped):", file=sys.stderr)
        for failure in result.failures:
            marker = " [pruned]" if failure.kind == "pruned" else ""
            print(
                f"  {failure.circuit}/{failure.scenario}/{failure.label}"
                f"{marker}: {failure.error}",
                file=sys.stderr,
            )

    # PDP is only comparable inside one (scenario, circuit) pair — a
    # stingy environment inflates every PDP and a bigger circuit simply
    # costs more — so fronts and "best" are reported per pair.
    fronts = result.fronts_by_scenario()
    for (scenario_label, circuit), records in result.by_scenario().items():
        group = f"{scenario_label} · {circuit}"
        front = fronts[(scenario_label, circuit)]
        print(f"\n[{group}] pareto front (PDP x re-execution exposure):")
        for r in sorted(front, key=lambda r: r.pdp_js):
            print(
                f"  {r.point.label()}  "
                f"PDP={r.pdp_js:.3e} Js  reexec={r.reexec_energy_j:.3e} J"
            )
        best = min(records, key=lambda r: r.pdp_js)
        print(
            f"[{group}] best: {best.point.label()}  "
            f"PDP={best.pdp_js:.3e} Js"
        )

    if multi_scenario and result.records:
        entries = result.robustness()
        print()
        print(format_robustness(entries, limit=robustness_top))
        top = entries[0]
        print(
            f"\nrobust best: {top.circuit}/{top.label}  "
            f"worst-case degradation {top.worst:.3f} over "
            f"{top.coverage} scenario(s)"
        )
    stats = result.stats
    search = (
        f"{strategy_name} search, {stats.n_generations} generation(s); "
        if stats.n_generations
        else ""
    )
    pruned = f"{stats.n_pruned} pruned, " if stats.n_pruned else ""
    print(
        f"{search}{stats.n_points} points ({stats.n_resumed} resumed, "
        f"{pruned}{stats.n_failed} failed) in "
        f"{stats.wall_s:.2f} s with {stats.workers} worker(s); "
        f"{stats.synthesize_calls} synthesis runs over "
        f"{stats.n_batches} batches"
    )
    recovery = []
    if stats.n_retries:
        recovery.append(f"{stats.n_retries} retries")
    if stats.n_timeouts:
        recovery.append(f"{stats.n_timeouts} batch timeouts")
    if stats.n_pool_rebuilds:
        recovery.append(f"{stats.n_pool_rebuilds} pool rebuilds")
    if stats.degraded_to_serial:
        recovery.append("degraded to serial")
    if recovery:
        print(f"recovery: {', '.join(recovery)}")
    return 1 if result.failures and not result.records else 0


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.service import run_worker

    if args.lease_size < 1:
        raise SystemExit("error: --lease-size must be >= 1")
    fault_plan = _parse_fault_plan(args)
    try:
        summary = run_worker(
            args.queue,
            args.results,
            worker_id=args.worker_id,
            lease_size=args.lease_size,
            poll_s=args.poll,
            drain=args.drain,
            idle_timeout_s=args.idle_timeout,
            fault_plan=fault_plan,
            store_backend=args.store_backend or "auto",
            fsync_every=args.fsync_every,
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None
    print(
        f"worker {summary['worker']}: {summary['n_done']} done, "
        f"{summary['n_failed']} failed over {summary['n_leases']} lease(s)"
    )
    return 0


def cmd_coordinator(args: argparse.Namespace) -> int:
    from repro.dse.request import dump_config
    from repro.service import SweepCoordinator

    merged = _merged_sweep_config(args)
    if args.dump_config:
        print(dump_config(merged), end="")
        return 0
    request = _request_from_merged(merged)
    store_cfg, execution = merged["store"], merged["execution"]
    if not store_cfg["results"]:
        raise SystemExit(
            "error: the coordinator requires --results (a SQLite store "
            "shared with the workers)"
        )
    if merged["search"]["samples"] < 1:
        raise SystemExit("error: --samples must be >= 1")
    if merged["search"]["generations"] < 1:
        raise SystemExit("error: --generations must be >= 1")
    if store_cfg["fsync_every"] < 0:
        raise SystemExit("error: --fsync-every must be >= 0")
    circuits = request.spec.circuits
    netlists = {name: _resolve_netlist(name) for name in circuits}
    sources = {
        name: str(Path(name).resolve())
        for name in circuits
        if name not in BY_NAME
    }
    fault_plan = _parse_fault_plan(args)
    coordinator = SweepCoordinator(
        store_cfg["results"],
        queue_path=args.queue,
        workers=args.spawn_workers,
        lease_size=args.lease_size,
        lease_timeout_s=args.lease_timeout,
        poll_s=args.poll,
        max_respawns=args.max_respawns,
        resilience=_resilience_config(
            execution["max_attempts"],
            execution["batch_timeout"],
            fault_plan,
        ),
        store_backend=store_cfg["backend"],
        fsync_every=store_cfg["fsync_every"],
        http_port=args.http,
    )
    try:
        result = coordinator.submit(
            request, netlists=netlists, sources=sources
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None
    return _report_sweep(result, request, args.robustness_top)


def cmd_view(args: argparse.Namespace) -> int:
    import sqlite3

    from repro.service import SweepViewServer

    queue_path = args.queue
    if queue_path is None and Path(args.store).exists():
        # The queue usually colocates with the store; attach it
        # automatically when its tables are present in the same file.
        with contextlib.closing(sqlite3.connect(args.store)) as conn:
            with contextlib.suppress(sqlite3.Error):
                found = conn.execute(
                    "SELECT name FROM sqlite_master "
                    "WHERE type = 'table' AND name = 'svc_tasks'"
                ).fetchone()
                if found is not None:
                    queue_path = args.store
    try:
        server = SweepViewServer(
            args.store,
            queue_path=queue_path,
            host=args.host,
            port=args.port,
        )
    except OSError as error:
        raise SystemExit(f"error: cannot bind view server: {error}") from None
    print(
        f"serving sweep view on http://{args.host}:{server.port}/ "
        "(/stats /fronts /failures /workers; Ctrl-C to stop)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.lint import (
        ERROR,
        LINT_RULES,
        classify_netlist_error,
        filter_findings,
        lint_netlist,
        lint_plan,
        lint_thresholds,
    )

    if args.rules:
        rows = [
            [rule.rule_id, rule.severity, rule.summary]
            for rule in LINT_RULES.values()
        ]
        print(format_table(["rule", "severity", "summary"], rows,
                           title="lint rules"))
        return 0

    targets = args.targets or sorted(BY_NAME)
    findings = []
    for spec in targets:
        path = Path(spec)
        if path.suffix == ".json":
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError) as error:
                raise SystemExit(f"error: {spec}: {error}") from None
            if isinstance(payload, dict) and isinstance(
                payload.get("thresholds"), dict
            ):
                payload = payload["thresholds"]
            if not isinstance(payload, dict):
                raise SystemExit(
                    f"error: {spec}: expected a JSON object of "
                    "threshold levels"
                )
            findings.extend(lint_thresholds(payload, source=spec))
            continue
        try:
            netlist = _resolve_netlist(spec)
        except SystemExit:
            raise
        except Exception as error:
            findings.append(classify_netlist_error(error, source=spec))
            continue
        netlist_findings = lint_netlist(netlist)
        findings.extend(netlist_findings)
        if args.deep and not any(
            f.severity == ERROR for f in netlist_findings
        ):
            from repro.analysis import prepare_static
            from repro.dse.explorer import DesignPoint

            point = DesignPoint(
                policy=args.policy, budget_scale=args.budget_scale
            )
            try:
                prepared = prepare_static(netlist, point)
            except Exception as error:
                print(
                    f"{spec}: deep lint skipped ({error})", file=sys.stderr
                )
                continue
            findings.extend(
                lint_plan(
                    prepared.design.plan,
                    thresholds=prepared.environment.thresholds,
                )
            )
            findings.extend(
                lint_thresholds(
                    prepared.environment.thresholds, source=spec
                )
            )

    findings = filter_findings(
        findings, select=args.select, ignore=args.ignore
    )
    for finding in findings:
        print(finding.render())
    errors = sum(1 for f in findings if f.severity == ERROR)
    warnings_ = len(findings) - errors
    print(
        f"{len(targets)} target(s): {errors} error(s), "
        f"{warnings_} warning(s)"
    )
    return 1 if errors else 0


def _resolved_scenario(args: argparse.Namespace):
    """``(scenario, spec)`` for a scenarios show/plot invocation.

    Accepts the sweep axis' ``name[@seed[@scale]]`` spec form too, so
    labels printed by ``sweep`` paste straight into ``show``/``plot``;
    an explicit ``--seed``/``--scale`` flag wins over a spec component
    (the flags default to ``None``, so even ``--seed 0`` overrides).
    """
    from repro.energy.scenarios import ScenarioSpec, resolve_scenario

    try:
        spec = ScenarioSpec(
            name=args.name,
            seed=args.seed if args.seed is not None else 0,
            scale=args.scale if args.scale is not None else 1.0,
        )
        try:
            scenario = resolve_scenario(spec.name)
        except KeyError:
            if "@" not in args.name:
                raise
            parsed = ScenarioSpec.parse(args.name)
            spec = ScenarioSpec(
                name=parsed.name,
                seed=args.seed if args.seed is not None else parsed.seed,
                scale=(
                    args.scale if args.scale is not None else parsed.scale
                ),
            )
            scenario = resolve_scenario(spec.name)
    except (ValueError, KeyError) as error:
        raise _scenario_exit(error) from None
    return scenario, spec


def cmd_scenarios_list(_args: argparse.Namespace) -> int:
    from repro.energy.scenarios import list_scenarios

    rows = []
    for scenario in list_scenarios():
        trace = scenario.build()
        rows.append(
            [
                scenario.name,
                scenario.kind,
                len(trace.segments),
                f"{trace.period_s:.1f}",
                f"{trace.mean_power_w:.2f}",
                f"{trace.peak_power_w:.2f}",
                scenario.description,
            ]
        )
    print(
        format_table(
            ["scenario", "kind", "segments", "period (t_ref)",
             "mean P (p_ref)", "peak P (p_ref)", "description"],
            rows,
            title="harvest-environment scenarios",
        )
    )
    return 0


def cmd_scenarios_show(args: argparse.Namespace) -> int:
    scenario, spec = _resolved_scenario(args)
    trace = scenario.build(spec.scale, 1.0, spec.seed)
    print(f"{spec.label()} ({scenario.kind}): {scenario.description}")
    print(
        f"  period: {trace.period_s:.2f} t_ref over "
        f"{len(trace.segments)} segments"
    )
    print(
        f"  power: mean {trace.mean_power_w:.3f} p_ref, "
        f"peak {trace.peak_power_w:.3f} p_ref, "
        f"{trace.cycle_energy_j:.2f} p_ref*t_ref per cycle"
    )
    if args.segments:
        for i, seg in enumerate(trace.segments):
            print(
                f"  [{i:3d}] {seg.duration_s:8.3f} t_ref @ "
                f"{seg.power_w:.3f} p_ref"
            )
    return 0


def cmd_scenarios_plot(args: argparse.Namespace) -> int:
    from repro.viz import line_plot

    scenario, spec = _resolved_scenario(args)
    trace = scenario.build(spec.scale, 1.0, spec.seed)
    # Sample densely enough that every segment shows at plot resolution.
    n_samples = max(args.width * 2, 4 * len(trace.segments))
    dt = trace.period_s / n_samples
    times = [i * dt for i in range(n_samples + 1)]
    powers = [trace.power_at(t) for t in times]
    print(
        line_plot(
            times,
            powers,
            width=args.width,
            height=args.height,
            title=f"{spec.label()}: harvest power (p_ref) over one cycle "
            "(t_ref)",
            y_markers={"mean": trace.mean_power_w},
        )
    )
    return 0


def cmd_fig4(_args: argparse.Namespace) -> int:
    from repro.energy import ThresholdSet, fig4_trace
    from repro.fsm import IntermittentSensorNode, SensorNodeConfig
    from repro.viz import line_plot

    trace = fig4_trace()
    node = IntermittentSensorNode(trace, SensorNodeConfig(seed=3))
    result = node.run(trace.period_s)
    times, energies = result.energy_series()
    th = ThresholdSet.paper_defaults()
    print(
        line_plot(
            times,
            [e * 1e3 for e in energies],
            width=100,
            height=18,
            title="Fig. 4: E_batt (mJ)",
            y_markers={
                "Th_Tr": th.transmit_j * 1e3,
                "Th_Cp": th.compute_j * 1e3,
                "Th_Safe": th.safe_j * 1e3,
                "Th_Bk": th.backup_j * 1e3,
                "Th_Off": th.off_j * 1e3,
            },
        )
    )
    print({k: v for k, v in result.counters.items() if v})
    return 0


def _add_sweep_config_args(
    p: argparse.ArgumentParser, *, engine_execution: bool
) -> None:
    """The config-file-mergeable sweep options, in argument groups.

    Shared by ``sweep`` and ``coordinator``.  Every option parses with
    ``default=None`` so :func:`_overrides_from_args` can tell "not
    given" from any real value when layering flags over ``--config``;
    the true defaults live in :data:`repro.dse.request.CONFIG_DEFAULTS`
    and are cited in the help text instead.
    """
    p.add_argument(
        "circuits", nargs="*",
        help="roster names or .bench/.blif paths (may also come from "
        "--config [space] circuits)",
    )
    p.add_argument(
        "--config", metavar="FILE",
        help="TOML sweep config file; explicit flags override its "
        "values (write a starting point with --dump-config)",
    )
    p.add_argument(
        "--dump-config", action="store_true",
        help="print the merged sweep config as TOML and exit",
    )
    space = p.add_argument_group(
        "design space", "the axes the sweep spans"
    )
    space.add_argument(
        "--policies", nargs="+", type=int, default=None,
        choices=(1, 2, 3), help="(default: 1 2 3)",
    )
    space.add_argument(
        "--budget-scales", nargs="+", type=float, default=None,
        metavar="SCALE", help="(default: 0.5 1.0 2.0)",
    )
    space.add_argument(
        "--nvm", nargs="+", default=None,
        help="mram|reram|feram|pcm (default: mram)",
    )
    space.add_argument(
        "--criteria", nargs="+", default=None, metavar="L,P,F",
        help="replacement criteria weight triples (level,power,fanio; "
        "default: 1,1,1)",
    )
    space.add_argument(
        "--safe-zone", choices=("both", "on", "off"), default=None,
        help="(default: both)",
    )
    space.add_argument(
        "--threshold-scales", nargs="+", type=float, default=None,
        metavar="FACTOR", help="(default: 1.0)",
    )
    space.add_argument(
        "--safe-margin-scales", nargs="+", type=float, default=None,
        metavar="FACTOR",
        help="safe-zone widths relative to the derived default",
    )
    scen = p.add_argument_group(
        "scenarios", "harvest environments to sweep under"
    )
    scen.add_argument(
        "--scenario", nargs="+", default=None,
        metavar="NAME[@SEED[@SCALE]]",
        help="registry names from 'scenarios list' or .csv/.jsonl "
        "power-log paths (default: paper-fig5)",
    )
    search = p.add_argument_group(
        "search", "adaptive strategies over the spanned space"
    )
    search.add_argument(
        "--strategy", choices=_STRATEGY_CHOICES, default=None,
        help="grid walks the spec full-factorially (default); "
        "random/lhs sample the spanned space; halving screens a pool "
        "under a cheap generous scenario then promotes; evolution "
        "mutates around the Pareto front",
    )
    search.add_argument(
        "--samples", type=int, default=None, metavar="N",
        help="candidate budget per generation for non-grid strategies "
        "(random sample count / halving pool / evolution population; "
        "default: 24)",
    )
    search.add_argument(
        "--generations", type=int, default=None, metavar="N",
        help="adaptive rounds for halving/evolution strategies "
        "(default: 4)",
    )
    search.add_argument(
        "--search-seed", type=int, default=None, metavar="SEED",
        help="RNG seed of the search strategy (deterministic per "
        "seed; default: 0)",
    )
    analysis = p.add_argument_group(
        "analysis", "static checks before simulation"
    )
    analysis.add_argument(
        "--analysis-prune", action="store_true", default=None,
        help="static interval analysis before simulating: grid sweeps "
        "skip points proven infeasible (recorded as kind='pruned' "
        "failures, never silently dropped); halving searches cut the "
        "opening pool with a zero-cost static round 0",
    )
    execution = p.add_argument_group(
        "execution", "parallelism and retry behaviour"
    )
    if engine_execution:
        execution.add_argument(
            "--workers", type=int, default=None,
            help="worker processes (default: 1 = serial)",
        )
    execution.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="evaluation attempts per task before a transient failure "
        "becomes permanent (1 disables retries; default: 3)",
    )
    execution.add_argument(
        "--batch-timeout", type=float, default=None, metavar="SECONDS",
        help="deadline per parallel batch; overdue batches are "
        "resubmitted to a rebuilt worker pool (default: no deadline)",
    )
    store = p.add_argument_group("result store", "persistence and resume")
    store.add_argument(
        "--results", metavar="FILE", default=None,
        help="stream records to this result store (JSON lines or "
        "SQLite)",
    )
    store.add_argument(
        "--store-backend", choices=("auto", "jsonl", "sqlite"),
        default=None,
        help="result-store backend; auto (default) detects an existing "
        "file's format, else picks sqlite for .sqlite/.sqlite3/.db "
        "extensions and jsonl otherwise",
    )
    store.add_argument(
        "--resume", action="store_true", default=None,
        help="skip points already present in --results (indexed key "
        "lookup; warns if the store's base configuration differs)",
    )
    store.add_argument(
        "--fsync-every", type=int, default=None, metavar="N",
        help="fsync --results after every N records (default: 0 = "
        "leave flushing to the OS)",
    )


def _add_chaos_args(p: argparse.ArgumentParser) -> None:
    """The fault-injection options (not part of the config file)."""
    chaos = p.add_argument_group("chaos", "deterministic fault injection")
    chaos.add_argument(
        "--inject-faults", metavar="SPEC",
        help="chaos testing: semicolon-separated faults of the form "
        "action[(seconds)][xN][@match] with action one of crash, hang, "
        "transient, corrupt — e.g. 'crash;hang(2.5)@b02;transientx2'",
    )
    chaos.add_argument(
        "--fault-dir", metavar="DIR",
        help="shared trip-state directory for --inject-faults "
        "(default: a fresh temp dir, so each run re-arms its plan)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DIAC design tool (DATE 2024 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("roster", help="list the benchmark roster").set_defaults(
        func=cmd_roster
    )

    def add_design_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("circuit", help="roster name or .bench/.blif path")
        p.add_argument("--policy", type=int, default=3, choices=(1, 2, 3))
        p.add_argument("--nvm", default="mram", help="mram|reram|feram|pcm")
        p.add_argument("--no-safe-zone", action="store_true")
        p.add_argument("--no-validate", action="store_true")

    p_synth = sub.add_parser("synth", help="run the DIAC pipeline")
    add_design_args(p_synth)
    p_synth.add_argument("--emit-verilog", metavar="FILE")
    p_synth.set_defaults(func=cmd_synth)

    p_eval = sub.add_parser("evaluate", help="four-scheme comparison")
    add_design_args(p_eval)
    p_eval.set_defaults(func=cmd_evaluate)

    p_sweep = sub.add_parser(
        "sweep",
        help="design-space exploration (parallel, cached, resumable)",
    )
    _add_sweep_config_args(p_sweep, engine_execution=True)
    _add_chaos_args(p_sweep)
    p_sweep.add_argument(
        "--robustness-top", type=int, default=10, metavar="N",
        help="rows of the cross-scenario robustness table to print",
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_coord = sub.add_parser(
        "coordinator",
        help="shard one sweep across queue-fed worker processes",
    )
    _add_sweep_config_args(p_coord, engine_execution=False)
    service = p_coord.add_argument_group(
        "service", "queue, worker fleet and view wiring"
    )
    service.add_argument(
        "--queue", metavar="FILE", default=None,
        help="lease-queue database (default: colocate with --results)",
    )
    service.add_argument(
        "--spawn-workers", type=int, default=2, metavar="N",
        help="worker processes to spawn (0 = rely on external "
        "'repro worker' processes pointed at the same queue)",
    )
    service.add_argument(
        "--lease-size", type=int, default=8, metavar="N",
        help="max tasks per worker lease (one synthesis stage each)",
    )
    service.add_argument(
        "--lease-timeout", type=float, default=60.0, metavar="SECONDS",
        help="lease lifetime before a silent worker is presumed dead; "
        "must exceed the worst-case wall time of one lease",
    )
    service.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="coordinator supervision interval",
    )
    service.add_argument(
        "--max-respawns", type=int, default=4, metavar="N",
        help="replacement workers allowed after crashes",
    )
    service.add_argument(
        "--http", type=int, default=None, metavar="PORT",
        help="serve the read-only sweep view on this port for the "
        "duration of the run (0 = ephemeral port)",
    )
    _add_chaos_args(p_coord)
    p_coord.add_argument(
        "--robustness-top", type=int, default=10, metavar="N",
        help="rows of the cross-scenario robustness table to print",
    )
    p_coord.set_defaults(func=cmd_coordinator)

    p_worker = sub.add_parser(
        "worker",
        help="evaluate leases from a coordinator's queue until drained",
    )
    p_worker.add_argument(
        "--queue", metavar="FILE", required=True,
        help="the coordinator's lease-queue database",
    )
    p_worker.add_argument(
        "--results", metavar="FILE", required=True,
        help="the shared SQLite result store",
    )
    p_worker.add_argument(
        "--store-backend", choices=("auto", "jsonl", "sqlite"),
        default="auto",
        help="result-store backend (must resolve to sqlite)",
    )
    p_worker.add_argument(
        "--worker-id", metavar="NAME", default=None,
        help="queue-visible identity (default: host-pid)",
    )
    p_worker.add_argument(
        "--lease-size", type=int, default=8, metavar="N",
        help="max tasks per claim",
    )
    p_worker.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="idle sleep between empty claims",
    )
    p_worker.add_argument(
        "--drain", action="store_true",
        help="exit once the queue is empty even if it is still open",
    )
    p_worker.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="exit after this much continuous idleness "
        "(default: wait for the queue to close)",
    )
    p_worker.add_argument(
        "--fsync-every", type=int, default=0, metavar="N",
        help="fsync the store after every N records",
    )
    _add_chaos_args(p_worker)
    p_worker.set_defaults(func=cmd_worker)

    p_view = sub.add_parser(
        "view",
        help="read-only HTTP JSON view over a sweep store",
    )
    p_view.add_argument(
        "store", metavar="STORE", help="result store to render"
    )
    p_view.add_argument(
        "--queue", metavar="FILE", default=None,
        help="lease queue for /failures, /workers and queue stats",
    )
    p_view.add_argument("--host", default="127.0.0.1")
    p_view.add_argument(
        "--port", type=int, default=8750,
        help="bind port (0 = ephemeral)",
    )
    p_view.set_defaults(func=cmd_view)

    p_scen = sub.add_parser(
        "scenarios", help="inspect the harvest-environment registry"
    )
    scen_sub = p_scen.add_subparsers(dest="scenarios_command", required=True)
    scen_sub.add_parser(
        "list", help="list registered scenarios"
    ).set_defaults(func=cmd_scenarios_list)

    def add_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "name", help="registry name or .csv/.jsonl power-log path"
        )
        p.add_argument(
            "--seed", type=int, default=None,
            help="RNG seed (stochastic scenarios; default 0)",
        )
        p.add_argument(
            "--scale", type=float, default=None,
            help="harvest-power multiplier (default 1.0)",
        )

    p_show = scen_sub.add_parser(
        "show", help="print a scenario's trace statistics"
    )
    add_scenario_args(p_show)
    p_show.add_argument(
        "--segments", action="store_true", help="dump every segment"
    )
    p_show.set_defaults(func=cmd_scenarios_show)

    p_plot = scen_sub.add_parser(
        "plot", help="ASCII plot of one scenario cycle"
    )
    add_scenario_args(p_plot)
    p_plot.add_argument("--width", type=int, default=100)
    p_plot.add_argument("--height", type=int, default=16)
    p_plot.set_defaults(func=cmd_scenarios_plot)

    p_lint = sub.add_parser(
        "lint",
        help="static design checks: netlists, task graphs, thresholds",
    )
    p_lint.add_argument(
        "targets", nargs="*",
        help="roster names, .bench/.blif netlists, or .json threshold "
        "configs (default: the full roster)",
    )
    p_lint.add_argument(
        "--deep", action="store_true",
        help="also synthesize each netlist and lint its NVM plan and "
        "derived thresholds (slower)",
    )
    p_lint.add_argument(
        "--policy", type=int, default=3, choices=(1, 2, 3),
        help="tree-construction policy for --deep synthesis",
    )
    p_lint.add_argument(
        "--budget-scale", type=float, default=1.0, metavar="SCALE",
        help="per-burst budget scale for --deep synthesis",
    )
    p_lint.add_argument(
        "--select", nargs="+", metavar="RULE",
        help="only report rules matching these IDs/prefixes (e.g. N C001)",
    )
    p_lint.add_argument(
        "--ignore", nargs="+", metavar="RULE",
        help="suppress rules matching these IDs/prefixes",
    )
    p_lint.add_argument(
        "--rules", action="store_true", help="list every rule and exit"
    )
    p_lint.set_defaults(func=cmd_lint)

    sub.add_parser("fig4", help="render the Fig. 4 timeline").set_defaults(
        func=cmd_fig4
    )

    from repro.dse.store_cli import register_store_parser
    from repro.perf.cli import register_perf_parser

    register_store_parser(sub)
    register_perf_parser(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
