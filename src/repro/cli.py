"""Command-line interface — the "prototyped DIAC design tool".

Usage (after ``pip install -e .``)::

    python -m repro roster                         # list the Fig. 5 roster
    python -m repro synth s27                      # run the DIAC pipeline
    python -m repro synth path/to/design.bench     # ... on your own netlist
    python -m repro evaluate s298 --policy 3       # four-scheme comparison
    python -m repro sweep b10                      # design-space exploration
    python -m repro sweep s27 b02 --workers 4 \
        --results out.jsonl --resume               # parallel, resumable sweep
    python -m repro sweep s27 --scenario paper-fig5 rf-markov@7 \
        --safe-zone on                             # cross-environment sweep
    python -m repro sweep s27 --strategy random --samples 16 \
        --threshold-scales 0.9 1.2                 # adaptive search
    python -m repro sweep s27 --strategy halving --samples 24 \
        --generations 3                            # screen, then promote
    python -m repro sweep s27 --results out.sqlite \
        --store-backend sqlite                     # indexed SQLite store
    python -m repro store stats out.sqlite         # store summary
    python -m repro store migrate out.jsonl out.sqlite  # JSONL <-> SQLite
    python -m repro sweep s27 --strategy halving --samples 24 \
        --analysis-prune                           # static round 0
    python -m repro lint                           # lint the full roster
    python -m repro lint my.bench bad.json --deep  # netlists + configs
    python -m repro scenarios list                 # harvest environments
    python -m repro scenarios show rf-markov --seed 7
    python -m repro scenarios plot office-solar    # ASCII power profile
    python -m repro fig4                           # the Fig. 4 timeline
    python -m repro perf run --quick               # time the hot paths
    python -m repro perf compare BENCH_4.json BENCH_5.json \
        --max-regression 0.2                       # regression gate
    python -m repro perf history                   # BENCH_*.json trend

Netlist arguments accept roster names, ``.bench`` files, or ``.blif``
files.  Scenario arguments accept registry names (``scenarios list``),
optionally seeded/scaled as ``name[@seed[@scale]]``, or paths to measured
``.csv``/``.jsonl`` power logs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.baselines import SCHEME_ORDER
from repro.circuits import load_bench, load_blif
from repro.circuits.netlist import Netlist
from repro.core import DiacConfig, DiacSynthesizer
from repro.evaluation import evaluate_design
from repro.metrics import format_table
from repro.suite import BY_NAME, ROSTER, load_circuit
from repro.tech import get_technology

#: Mirrors :data:`repro.dse.strategies.STRATEGIES`; kept literal so the
#: parser builds without importing the (heavier) DSE package.
_STRATEGY_CHOICES = ("grid", "random", "lhs", "halving", "evolution")


def _resolve_netlist(spec: str) -> Netlist:
    """Roster name, .bench path, or .blif path -> netlist."""
    path = Path(spec)
    if path.suffix == ".bench" and path.exists():
        return load_bench(path)
    if path.suffix in (".blif", ".mcnc") and path.exists():
        return load_blif(path)
    if spec in BY_NAME:
        return load_circuit(spec)
    raise SystemExit(
        f"error: {spec!r} is neither a roster circuit nor an existing "
        f".bench/.blif file; roster: {', '.join(sorted(BY_NAME))}"
    )


def _config_from_args(args: argparse.Namespace) -> DiacConfig:
    return DiacConfig(
        policy=args.policy,
        technology=get_technology(args.nvm),
        use_safe_zone=not args.no_safe_zone,
        validate=not args.no_validate,
    )


def cmd_roster(_args: argparse.Namespace) -> int:
    rows = [
        [b.name, b.suite, b.n_gates, b.function, b.style] for b in ROSTER
    ]
    print(
        format_table(
            ["circuit", "suite", "gates", "function", "style"],
            rows,
            title="Fig. 5 benchmark roster",
        )
    )
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    netlist = _resolve_netlist(args.circuit)
    design = DiacSynthesizer(_config_from_args(args)).run(netlist)
    print(design.report_text())
    if args.emit_verilog:
        out = Path(args.emit_verilog)
        out.write_text(design.code.verilog)
        print(f"\nwrote NV-enhanced HDL to {out}")
    if not design.code.timing.passed:
        for violation in design.code.timing.violations:
            print(f"TIMING VIOLATION: {violation}", file=sys.stderr)
        return 1
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    netlist = _resolve_netlist(args.circuit)
    design = DiacSynthesizer(_config_from_args(args)).run(netlist)
    evaluation = evaluate_design(design)
    norm = evaluation.normalized_pdp()
    rows = [
        [
            scheme,
            f"{evaluation.results[scheme].total_energy_j:.3e}",
            f"{evaluation.results[scheme].active_time_s:.3e}",
            evaluation.results[scheme].n_backups,
            f"{norm[scheme]:.3f}",
        ]
        for scheme in SCHEME_ORDER
    ]
    print(
        format_table(
            ["scheme", "energy (J)", "busy time (s)", "backups", "norm. PDP"],
            rows,
            title=f"{netlist.name}: four-scheme comparison",
        )
    )
    return 0


def _parse_criteria(specs: list[str]):
    """Parse ``level,power,fanio`` weight triples into criteria objects."""
    from repro.core.replacement import ReplacementCriteria

    criteria = []
    for spec in specs:
        parts = spec.split(",")
        if len(parts) != 3:
            raise SystemExit(
                f"error: criteria spec {spec!r} must be three "
                "comma-separated weights, e.g. 1,1,1"
            )
        try:
            level, power, fanio = (float(p) for p in parts)
        except ValueError:
            raise SystemExit(
                f"error: criteria spec {spec!r} has non-numeric weights"
            ) from None
        criteria.append(
            ReplacementCriteria(
                level_weight=level, power_weight=power, fanio_weight=fanio
            )
        )
    return tuple(criteria)


def _scenario_exit(error: Exception) -> SystemExit:
    """A scenario lookup/parse error as a clean CLI exit."""
    message = error.args[0] if error.args else error
    return SystemExit(f"error: {message}")


def _parse_scenarios(specs: list[str]):
    """Parse and validate ``name[@seed[@scale]]`` scenario specs.

    The raw text is tried as a scenario name first, so a power-log path
    containing ``@`` (``logs/site@3.csv``) resolves as a file instead of
    being split into spec components.
    """
    from repro.energy.scenarios import ScenarioSpec, resolve_scenario

    scenarios = []
    for text in specs:
        try:
            try:
                resolve_scenario(text)
                spec = ScenarioSpec(name=text)
            except KeyError:
                spec = ScenarioSpec.parse(text)
                resolve_scenario(spec.name)  # fail fast on unknown names
        except (ValueError, KeyError) as error:
            raise _scenario_exit(error) from None
        scenarios.append(spec)
    return tuple(scenarios)


def _parse_fault_plan(args: argparse.Namespace):
    """Build the chaos plan of ``--inject-faults``, or ``None``.

    The trip-state directory defaults to a fresh temp dir per run, so
    back-to-back chaos invocations re-arm their faults; pass
    ``--fault-dir`` to share state across runs on purpose.
    """
    import tempfile

    from repro.dse import FaultPlan

    if not args.inject_faults:
        return None
    state_dir = args.fault_dir or tempfile.mkdtemp(prefix="repro-faults-")
    try:
        plan = FaultPlan.parse(args.inject_faults, state_dir)
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None
    print(
        f"injecting faults: {plan.describe()} (state: {plan.state_dir})",
        file=sys.stderr,
    )
    return plan


def _resilience_from_args(args: argparse.Namespace, fault_plan):
    from repro.dse import ResilienceConfig, RetryPolicy

    try:
        return ResilienceConfig(
            retry=RetryPolicy(max_attempts=args.max_attempts),
            batch_timeout_s=args.batch_timeout,
            fault_plan=fault_plan,
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.dse import (
        DesignSpace,
        SweepEngine,
        SweepSpec,
        make_strategy,
        open_store,
    )
    from repro.metrics import format_robustness

    if args.workers < 1:
        raise SystemExit("error: --workers must be >= 1")
    if args.resume and not args.results:
        raise SystemExit("error: --resume requires --results")
    if args.samples < 1:
        raise SystemExit("error: --samples must be >= 1")
    if args.generations < 1:
        raise SystemExit("error: --generations must be >= 1")
    if args.fsync_every < 0:
        raise SystemExit("error: --fsync-every must be >= 0")
    netlists = {spec: _resolve_netlist(spec) for spec in args.circuits}
    safe_zones = {
        "both": (True, False), "on": (True,), "off": (False,),
    }[args.safe_zone]
    try:
        technologies = tuple(get_technology(n) for n in args.nvm)
    except KeyError as error:
        raise SystemExit(f"error: {error.args[0]}") from None
    try:
        spec = SweepSpec(
            circuits=tuple(args.circuits),
            policies=tuple(args.policies),
            budget_scales=tuple(args.budget_scales),
            technologies=technologies,
            criteria_sets=_parse_criteria(args.criteria),
            safe_zones=safe_zones,
            threshold_scales=tuple(args.threshold_scales),
            safe_margin_scales=(
                tuple(args.safe_margin_scales) if args.safe_margin_scales
                else (None,)
            ),
            scenarios=_parse_scenarios(args.scenario),
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None
    fault_plan = _parse_fault_plan(args)
    store = (
        open_store(
            args.results,
            backend=args.store_backend,
            fsync_every=args.fsync_every,
            fault_plan=fault_plan,
        )
        if args.results
        else None
    )
    engine = SweepEngine(
        workers=args.workers,
        store=store,
        resilience=_resilience_from_args(args, fault_plan),
    )
    if args.analysis_prune and args.strategy not in ("grid", "halving"):
        raise SystemExit(
            "error: --analysis-prune applies to the grid sweep (engine "
            "pruning) and the halving search (static round 0), not "
            f"--strategy {args.strategy}"
        )
    if args.strategy == "grid":
        # The full-factorial walk keeps its dedicated spec-order path.
        result = engine.run(
            spec,
            netlists=netlists,
            resume=args.resume,
            analysis_prune=args.analysis_prune,
        )
    else:
        # Adaptive search over the space the spec's axes span: discrete
        # choices stay choices, scale axes become continuous ranges.
        screener = None
        if args.analysis_prune:
            from repro.analysis import StaticScreener

            screener = StaticScreener(
                netlists=netlists, scenarios=spec.scenarios
            )
        try:
            strategy = make_strategy(
                args.strategy,
                DesignSpace.from_spec(spec),
                samples=args.samples,
                generations=args.generations,
                seed=args.search_seed,
                screener=screener,
            )
        except ValueError as error:
            raise SystemExit(f"error: {error}") from None
        result = engine.run_search(
            strategy,
            circuits=spec.circuits,
            scenarios=spec.scenarios,
            netlists=netlists,
            resume=args.resume,
            # Strategies self-terminate; the backstop only guards
            # against a runaway ask loop, so it must never truncate the
            # rounds the user explicitly asked for.
            max_generations=max(64, args.generations),
        )

    # Distinct environments, not raw spec count: equivalent specs
    # (e.g. 'rf-markov@7' and 'rf-markov@7x1.0') dedupe to one scenario,
    # and a one-environment "robustness" table would be meaningless.
    multi_scenario = len(set(spec.scenarios)) > 1
    rows = [
        [
            r.circuit,
            *([r.scenario.label()] if multi_scenario else []),
            r.point.label(),
            r.n_barriers,
            r.n_backups,
            f"{r.reexec_energy_j:.3e}",
            f"{r.pdp_js:.3e}",
        ]
        for r in sorted(result.records, key=lambda r: r.pdp_js)
    ]
    title = f"{', '.join(args.circuits)}: design-space sweep"
    print(
        format_table(
            ["circuit",
             *(["scenario"] if multi_scenario else []),
             "design point", "barriers", "backups",
             "re-exec (J)", "PDP (Js)"],
            rows,
            title=title,
        )
    )

    if result.failures:
        print("\nfailed points (skipped):", file=sys.stderr)
        for failure in result.failures:
            marker = " [pruned]" if failure.kind == "pruned" else ""
            print(
                f"  {failure.circuit}/{failure.scenario}/{failure.label}"
                f"{marker}: {failure.error}",
                file=sys.stderr,
            )

    # PDP is only comparable inside one (scenario, circuit) pair — a
    # stingy environment inflates every PDP and a bigger circuit simply
    # costs more — so fronts and "best" are reported per pair.
    fronts = result.fronts_by_scenario()
    for (scenario_label, circuit), records in result.by_scenario().items():
        group = f"{scenario_label} · {circuit}"
        front = fronts[(scenario_label, circuit)]
        print(f"\n[{group}] pareto front (PDP x re-execution exposure):")
        for r in sorted(front, key=lambda r: r.pdp_js):
            print(
                f"  {r.point.label()}  "
                f"PDP={r.pdp_js:.3e} Js  reexec={r.reexec_energy_j:.3e} J"
            )
        best = min(records, key=lambda r: r.pdp_js)
        print(
            f"[{group}] best: {best.point.label()}  "
            f"PDP={best.pdp_js:.3e} Js"
        )

    if multi_scenario and result.records:
        entries = result.robustness()
        print()
        print(format_robustness(entries, limit=args.robustness_top))
        top = entries[0]
        print(
            f"\nrobust best: {top.circuit}/{top.label}  "
            f"worst-case degradation {top.worst:.3f} over "
            f"{top.coverage} scenario(s)"
        )
    stats = result.stats
    search = (
        f"{args.strategy} search, {stats.n_generations} generation(s); "
        if stats.n_generations
        else ""
    )
    pruned = f"{stats.n_pruned} pruned, " if stats.n_pruned else ""
    print(
        f"{search}{stats.n_points} points ({stats.n_resumed} resumed, "
        f"{pruned}{stats.n_failed} failed) in "
        f"{stats.wall_s:.2f} s with {stats.workers} worker(s); "
        f"{stats.synthesize_calls} synthesis runs over "
        f"{stats.n_batches} batches"
    )
    recovery = []
    if stats.n_retries:
        recovery.append(f"{stats.n_retries} retries")
    if stats.n_timeouts:
        recovery.append(f"{stats.n_timeouts} batch timeouts")
    if stats.n_pool_rebuilds:
        recovery.append(f"{stats.n_pool_rebuilds} pool rebuilds")
    if stats.degraded_to_serial:
        recovery.append("degraded to serial")
    if recovery:
        print(f"recovery: {', '.join(recovery)}")
    return 1 if result.failures and not result.records else 0


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.lint import (
        ERROR,
        LINT_RULES,
        classify_netlist_error,
        filter_findings,
        lint_netlist,
        lint_plan,
        lint_thresholds,
    )

    if args.rules:
        rows = [
            [rule.rule_id, rule.severity, rule.summary]
            for rule in LINT_RULES.values()
        ]
        print(format_table(["rule", "severity", "summary"], rows,
                           title="lint rules"))
        return 0

    targets = args.targets or sorted(BY_NAME)
    findings = []
    for spec in targets:
        path = Path(spec)
        if path.suffix == ".json":
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError) as error:
                raise SystemExit(f"error: {spec}: {error}") from None
            if isinstance(payload, dict) and isinstance(
                payload.get("thresholds"), dict
            ):
                payload = payload["thresholds"]
            if not isinstance(payload, dict):
                raise SystemExit(
                    f"error: {spec}: expected a JSON object of "
                    "threshold levels"
                )
            findings.extend(lint_thresholds(payload, source=spec))
            continue
        try:
            netlist = _resolve_netlist(spec)
        except SystemExit:
            raise
        except Exception as error:
            findings.append(classify_netlist_error(error, source=spec))
            continue
        netlist_findings = lint_netlist(netlist)
        findings.extend(netlist_findings)
        if args.deep and not any(
            f.severity == ERROR for f in netlist_findings
        ):
            from repro.analysis import prepare_static
            from repro.dse.explorer import DesignPoint

            point = DesignPoint(
                policy=args.policy, budget_scale=args.budget_scale
            )
            try:
                prepared = prepare_static(netlist, point)
            except Exception as error:
                print(
                    f"{spec}: deep lint skipped ({error})", file=sys.stderr
                )
                continue
            findings.extend(
                lint_plan(
                    prepared.design.plan,
                    thresholds=prepared.environment.thresholds,
                )
            )
            findings.extend(
                lint_thresholds(
                    prepared.environment.thresholds, source=spec
                )
            )

    findings = filter_findings(
        findings, select=args.select, ignore=args.ignore
    )
    for finding in findings:
        print(finding.render())
    errors = sum(1 for f in findings if f.severity == ERROR)
    warnings_ = len(findings) - errors
    print(
        f"{len(targets)} target(s): {errors} error(s), "
        f"{warnings_} warning(s)"
    )
    return 1 if errors else 0


def _resolved_scenario(args: argparse.Namespace):
    """``(scenario, spec)`` for a scenarios show/plot invocation.

    Accepts the sweep axis' ``name[@seed[@scale]]`` spec form too, so
    labels printed by ``sweep`` paste straight into ``show``/``plot``;
    an explicit ``--seed``/``--scale`` flag wins over a spec component
    (the flags default to ``None``, so even ``--seed 0`` overrides).
    """
    from repro.energy.scenarios import ScenarioSpec, resolve_scenario

    try:
        spec = ScenarioSpec(
            name=args.name,
            seed=args.seed if args.seed is not None else 0,
            scale=args.scale if args.scale is not None else 1.0,
        )
        try:
            scenario = resolve_scenario(spec.name)
        except KeyError:
            if "@" not in args.name:
                raise
            parsed = ScenarioSpec.parse(args.name)
            spec = ScenarioSpec(
                name=parsed.name,
                seed=args.seed if args.seed is not None else parsed.seed,
                scale=(
                    args.scale if args.scale is not None else parsed.scale
                ),
            )
            scenario = resolve_scenario(spec.name)
    except (ValueError, KeyError) as error:
        raise _scenario_exit(error) from None
    return scenario, spec


def cmd_scenarios_list(_args: argparse.Namespace) -> int:
    from repro.energy.scenarios import list_scenarios

    rows = []
    for scenario in list_scenarios():
        trace = scenario.build()
        rows.append(
            [
                scenario.name,
                scenario.kind,
                len(trace.segments),
                f"{trace.period_s:.1f}",
                f"{trace.mean_power_w:.2f}",
                f"{trace.peak_power_w:.2f}",
                scenario.description,
            ]
        )
    print(
        format_table(
            ["scenario", "kind", "segments", "period (t_ref)",
             "mean P (p_ref)", "peak P (p_ref)", "description"],
            rows,
            title="harvest-environment scenarios",
        )
    )
    return 0


def cmd_scenarios_show(args: argparse.Namespace) -> int:
    scenario, spec = _resolved_scenario(args)
    trace = scenario.build(spec.scale, 1.0, spec.seed)
    print(f"{spec.label()} ({scenario.kind}): {scenario.description}")
    print(
        f"  period: {trace.period_s:.2f} t_ref over "
        f"{len(trace.segments)} segments"
    )
    print(
        f"  power: mean {trace.mean_power_w:.3f} p_ref, "
        f"peak {trace.peak_power_w:.3f} p_ref, "
        f"{trace.cycle_energy_j:.2f} p_ref*t_ref per cycle"
    )
    if args.segments:
        for i, seg in enumerate(trace.segments):
            print(
                f"  [{i:3d}] {seg.duration_s:8.3f} t_ref @ "
                f"{seg.power_w:.3f} p_ref"
            )
    return 0


def cmd_scenarios_plot(args: argparse.Namespace) -> int:
    from repro.viz import line_plot

    scenario, spec = _resolved_scenario(args)
    trace = scenario.build(spec.scale, 1.0, spec.seed)
    # Sample densely enough that every segment shows at plot resolution.
    n_samples = max(args.width * 2, 4 * len(trace.segments))
    dt = trace.period_s / n_samples
    times = [i * dt for i in range(n_samples + 1)]
    powers = [trace.power_at(t) for t in times]
    print(
        line_plot(
            times,
            powers,
            width=args.width,
            height=args.height,
            title=f"{spec.label()}: harvest power (p_ref) over one cycle "
            "(t_ref)",
            y_markers={"mean": trace.mean_power_w},
        )
    )
    return 0


def cmd_fig4(_args: argparse.Namespace) -> int:
    from repro.energy import ThresholdSet, fig4_trace
    from repro.fsm import IntermittentSensorNode, SensorNodeConfig
    from repro.viz import line_plot

    trace = fig4_trace()
    node = IntermittentSensorNode(trace, SensorNodeConfig(seed=3))
    result = node.run(trace.period_s)
    times, energies = result.energy_series()
    th = ThresholdSet.paper_defaults()
    print(
        line_plot(
            times,
            [e * 1e3 for e in energies],
            width=100,
            height=18,
            title="Fig. 4: E_batt (mJ)",
            y_markers={
                "Th_Tr": th.transmit_j * 1e3,
                "Th_Cp": th.compute_j * 1e3,
                "Th_Safe": th.safe_j * 1e3,
                "Th_Bk": th.backup_j * 1e3,
                "Th_Off": th.off_j * 1e3,
            },
        )
    )
    print({k: v for k, v in result.counters.items() if v})
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DIAC design tool (DATE 2024 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("roster", help="list the benchmark roster").set_defaults(
        func=cmd_roster
    )

    def add_design_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("circuit", help="roster name or .bench/.blif path")
        p.add_argument("--policy", type=int, default=3, choices=(1, 2, 3))
        p.add_argument("--nvm", default="mram", help="mram|reram|feram|pcm")
        p.add_argument("--no-safe-zone", action="store_true")
        p.add_argument("--no-validate", action="store_true")

    p_synth = sub.add_parser("synth", help="run the DIAC pipeline")
    add_design_args(p_synth)
    p_synth.add_argument("--emit-verilog", metavar="FILE")
    p_synth.set_defaults(func=cmd_synth)

    p_eval = sub.add_parser("evaluate", help="four-scheme comparison")
    add_design_args(p_eval)
    p_eval.set_defaults(func=cmd_evaluate)

    p_sweep = sub.add_parser(
        "sweep",
        help="design-space exploration (parallel, cached, resumable)",
    )
    p_sweep.add_argument(
        "circuits", nargs="+", help="roster names or .bench/.blif paths"
    )
    p_sweep.add_argument(
        "--policies", nargs="+", type=int, default=[1, 2, 3],
        choices=(1, 2, 3),
    )
    p_sweep.add_argument(
        "--budget-scales", nargs="+", type=float, default=[0.5, 1.0, 2.0],
        metavar="SCALE",
    )
    p_sweep.add_argument(
        "--nvm", nargs="+", default=["mram"], help="mram|reram|feram|pcm"
    )
    p_sweep.add_argument(
        "--criteria", nargs="+", default=["1,1,1"], metavar="L,P,F",
        help="replacement criteria weight triples (level,power,fanio)",
    )
    p_sweep.add_argument(
        "--safe-zone", choices=("both", "on", "off"), default="both"
    )
    p_sweep.add_argument(
        "--threshold-scales", nargs="+", type=float, default=[1.0],
        metavar="FACTOR",
    )
    p_sweep.add_argument(
        "--safe-margin-scales", nargs="+", type=float, default=[],
        metavar="FACTOR",
        help="safe-zone widths relative to the derived default",
    )
    p_sweep.add_argument(
        "--scenario", nargs="+", default=["paper-fig5"],
        metavar="NAME[@SEED[@SCALE]]",
        help="harvest environments to sweep under (registry names from "
        "'scenarios list' or .csv/.jsonl power-log paths)",
    )
    p_sweep.add_argument(
        "--robustness-top", type=int, default=10, metavar="N",
        help="rows of the cross-scenario robustness table to print",
    )
    p_sweep.add_argument(
        "--strategy", choices=_STRATEGY_CHOICES, default="grid",
        help="search strategy: grid walks the spec full-factorially; "
        "random/lhs sample the spanned space; halving screens a pool "
        "under a cheap generous scenario then promotes; evolution "
        "mutates around the Pareto front",
    )
    p_sweep.add_argument(
        "--samples", type=int, default=24, metavar="N",
        help="candidate budget per generation for non-grid strategies "
        "(random sample count / halving pool / evolution population)",
    )
    p_sweep.add_argument(
        "--generations", type=int, default=4, metavar="N",
        help="adaptive rounds for halving/evolution strategies",
    )
    p_sweep.add_argument(
        "--search-seed", type=int, default=0, metavar="SEED",
        help="RNG seed of the search strategy (deterministic per seed)",
    )
    p_sweep.add_argument(
        "--analysis-prune", action="store_true",
        help="static interval analysis before simulating: grid sweeps "
        "skip points proven infeasible (recorded as kind='pruned' "
        "failures, never silently dropped); halving searches cut the "
        "opening pool with a zero-cost static round 0",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial)",
    )
    p_sweep.add_argument(
        "--results", metavar="FILE",
        help="stream records to this result store (JSON lines or SQLite)",
    )
    p_sweep.add_argument(
        "--store-backend", choices=("auto", "jsonl", "sqlite"),
        default="auto",
        help="result-store backend; auto (default) detects an existing "
        "file's format, else picks sqlite for .sqlite/.sqlite3/.db "
        "extensions and jsonl otherwise",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="skip points already present in --results (indexed key "
        "lookup; warns if the store's base configuration differs)",
    )
    p_sweep.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="evaluation attempts per task before a transient failure "
        "becomes permanent (1 disables retries)",
    )
    p_sweep.add_argument(
        "--batch-timeout", type=float, default=None, metavar="SECONDS",
        help="deadline per parallel batch; overdue batches are "
        "resubmitted to a rebuilt worker pool (default: no deadline)",
    )
    p_sweep.add_argument(
        "--fsync-every", type=int, default=0, metavar="N",
        help="fsync --results after every N records (0 = leave "
        "flushing to the OS)",
    )
    p_sweep.add_argument(
        "--inject-faults", metavar="SPEC",
        help="chaos testing: semicolon-separated faults of the form "
        "action[(seconds)][xN][@match] with action one of crash, hang, "
        "transient, corrupt — e.g. 'crash;hang(2.5)@b02;transientx2'",
    )
    p_sweep.add_argument(
        "--fault-dir", metavar="DIR",
        help="shared trip-state directory for --inject-faults "
        "(default: a fresh temp dir, so each run re-arms its plan)",
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_scen = sub.add_parser(
        "scenarios", help="inspect the harvest-environment registry"
    )
    scen_sub = p_scen.add_subparsers(dest="scenarios_command", required=True)
    scen_sub.add_parser(
        "list", help="list registered scenarios"
    ).set_defaults(func=cmd_scenarios_list)

    def add_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "name", help="registry name or .csv/.jsonl power-log path"
        )
        p.add_argument(
            "--seed", type=int, default=None,
            help="RNG seed (stochastic scenarios; default 0)",
        )
        p.add_argument(
            "--scale", type=float, default=None,
            help="harvest-power multiplier (default 1.0)",
        )

    p_show = scen_sub.add_parser(
        "show", help="print a scenario's trace statistics"
    )
    add_scenario_args(p_show)
    p_show.add_argument(
        "--segments", action="store_true", help="dump every segment"
    )
    p_show.set_defaults(func=cmd_scenarios_show)

    p_plot = scen_sub.add_parser(
        "plot", help="ASCII plot of one scenario cycle"
    )
    add_scenario_args(p_plot)
    p_plot.add_argument("--width", type=int, default=100)
    p_plot.add_argument("--height", type=int, default=16)
    p_plot.set_defaults(func=cmd_scenarios_plot)

    p_lint = sub.add_parser(
        "lint",
        help="static design checks: netlists, task graphs, thresholds",
    )
    p_lint.add_argument(
        "targets", nargs="*",
        help="roster names, .bench/.blif netlists, or .json threshold "
        "configs (default: the full roster)",
    )
    p_lint.add_argument(
        "--deep", action="store_true",
        help="also synthesize each netlist and lint its NVM plan and "
        "derived thresholds (slower)",
    )
    p_lint.add_argument(
        "--policy", type=int, default=3, choices=(1, 2, 3),
        help="tree-construction policy for --deep synthesis",
    )
    p_lint.add_argument(
        "--budget-scale", type=float, default=1.0, metavar="SCALE",
        help="per-burst budget scale for --deep synthesis",
    )
    p_lint.add_argument(
        "--select", nargs="+", metavar="RULE",
        help="only report rules matching these IDs/prefixes (e.g. N C001)",
    )
    p_lint.add_argument(
        "--ignore", nargs="+", metavar="RULE",
        help="suppress rules matching these IDs/prefixes",
    )
    p_lint.add_argument(
        "--rules", action="store_true", help="list every rule and exit"
    )
    p_lint.set_defaults(func=cmd_lint)

    sub.add_parser("fig4", help="render the Fig. 4 timeline").set_defaults(
        func=cmd_fig4
    )

    from repro.dse.store_cli import register_store_parser
    from repro.perf.cli import register_perf_parser

    register_store_parser(sub)
    register_perf_parser(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
