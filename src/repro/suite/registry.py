"""Benchmark circuit registry: ISCAS-89, ITC-99 and MCNC rosters.

Gate counts and function classes come from the paper's Fig. 5 caption.
``s27`` is the genuine published netlist; every other circuit is generated
deterministically (seed = name) to match its published combinational gate
count, its function class, and its suite's sequential character.  Genuine
``.bench``/BLIF distributions can be dropped in via
:func:`repro.circuits.load_bench` / :func:`repro.circuits.load_blif` and
evaluated with the same harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration import SUITE_FF_FRACTION
from repro.circuits.bench_parser import parse_bench
from repro.circuits.data_s27 import S27_BENCH
from repro.circuits.generators import CircuitSpec, generate_circuit
from repro.circuits.netlist import Netlist


@dataclass(frozen=True)
class BenchmarkInfo:
    """Roster entry for one benchmark circuit.

    Attributes:
        name: circuit name (conventional suite member).
        suite: ``iscas89``, ``itc99`` or ``mcnc``.
        n_gates: combinational gate count from the paper's Fig. 5 caption.
        function: the paper's function label for the circuit.
        style: generator style matching the function class.
    """

    name: str
    suite: str
    n_gates: int
    function: str
    style: str


#: The 24 circuits of Fig. 5 (12 ISCAS-89, 8 ITC-99, 4 MCNC).
ROSTER: tuple[BenchmarkInfo, ...] = (
    # ISCAS-89.
    BenchmarkInfo("s27", "iscas89", 10, "Logic", "logic"),
    BenchmarkInfo("s298", "iscas89", 119, "PLD", "pld"),
    BenchmarkInfo("s349", "iscas89", 161, "4-bit Multiplier", "datapath"),
    BenchmarkInfo("s382", "iscas89", 164, "TLC", "fsm"),
    BenchmarkInfo("s420", "iscas89", 218, "Fractional Multiplier", "datapath"),
    BenchmarkInfo("s526", "iscas89", 193, "PLD", "pld"),
    BenchmarkInfo("s820", "iscas89", 289, "Fractional Multiplier", "datapath"),
    BenchmarkInfo("s838", "iscas89", 446, "Logic", "logic"),
    BenchmarkInfo("s1196", "iscas89", 529, "Logic", "logic"),
    BenchmarkInfo("s1423", "iscas89", 657, "Logic", "logic"),
    BenchmarkInfo("s15850", "iscas89", 9772, "Logic", "logic"),
    BenchmarkInfo("s38584", "iscas89", 19253, "Logic", "logic"),
    # ITC-99.
    BenchmarkInfo("b02", "itc99", 22, "BCD FSM", "fsm"),
    BenchmarkInfo("b05", "itc99", 861, "Elaborate CM", "fsm"),
    BenchmarkInfo("b09", "itc99", 129, "S-to-S Converter", "fsm"),
    BenchmarkInfo("b10", "itc99", 155, "Voting System", "fsm"),
    BenchmarkInfo("b11", "itc99", 437, "Scramble string", "fsm"),
    BenchmarkInfo("b12", "itc99", 904, "Guess a sequence", "fsm"),
    BenchmarkInfo("b13", "itc99", 266, "I/F to sensor", "fsm"),
    BenchmarkInfo("b14", "itc99", 4444, "Viper processor", "logic"),
    # MCNC.
    BenchmarkInfo("des", "mcnc", 2383, "Key Encryption", "pld"),
    BenchmarkInfo("i10", "mcnc", 5763, "Bus Interface", "pld"),
    BenchmarkInfo("seq", "mcnc", 744, "Encryption Circuit", "pld"),
    BenchmarkInfo("b9ctrl", "mcnc", 490, "Bus Controller", "pld"),
)

#: Name -> roster entry.
BY_NAME: dict[str, BenchmarkInfo] = {b.name: b for b in ROSTER}


def suite_members(suite: str) -> list[BenchmarkInfo]:
    """Roster entries of one suite, in Fig. 5 order.

    Raises:
        KeyError: for an unknown suite name.
    """
    members = [b for b in ROSTER if b.suite == suite]
    if not members:
        raise KeyError(
            f"unknown suite {suite!r}; expected one of "
            f"{sorted({b.suite for b in ROSTER})}"
        )
    return members


def load_circuit(name: str) -> Netlist:
    """Materialize a roster circuit by name.

    ``s27`` parses the genuine ISCAS-89 netlist; all others are generated
    deterministically to the published gate count.

    Raises:
        KeyError: for names not on the roster.
    """
    if name not in BY_NAME:
        raise KeyError(
            f"unknown benchmark {name!r}; roster: {sorted(BY_NAME)}"
        )
    info = BY_NAME[name]
    if name == "s27":
        return parse_bench(S27_BENCH, name="s27")
    spec = CircuitSpec(
        name=info.name,
        n_gates=info.n_gates,
        ff_fraction=SUITE_FF_FRACTION[info.suite],
        style=info.style,
    )
    return generate_circuit(spec)


def small_roster(max_gates: int = 1000) -> list[BenchmarkInfo]:
    """Roster members at or below ``max_gates`` (fast test subsets)."""
    return [b for b in ROSTER if b.n_gates <= max_gates]
