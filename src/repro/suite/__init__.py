"""Benchmark suite registry (ISCAS-89 / ITC-99 / MCNC roster of Fig. 5)."""

from repro.suite.registry import (
    BY_NAME,
    ROSTER,
    BenchmarkInfo,
    load_circuit,
    small_roster,
    suite_members,
)

__all__ = [
    "BY_NAME",
    "BenchmarkInfo",
    "ROSTER",
    "load_circuit",
    "small_roster",
    "suite_members",
]
