"""ASCII visualization helpers for traces and PDP charts.

Renders the paper's Fig. 4 timeline, Fig. 5-style comparisons and
scenario power profiles in plain terminals.
"""

from repro.viz.ascii_plot import bar_chart, line_plot

__all__ = ["bar_chart", "line_plot"]
