"""ASCII visualization helpers for traces and PDP charts."""

from repro.viz.ascii_plot import bar_chart, line_plot

__all__ = ["bar_chart", "line_plot"]
