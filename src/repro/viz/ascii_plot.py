"""Terminal plots (no plotting library required offline).

Renders the Fig. 4 energy timeline, Fig. 5-style bar charts and scenario
power profiles as ASCII, for the CLI and the examples.
"""

from __future__ import annotations

from collections.abc import Sequence


def line_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 100,
    height: int = 20,
    title: str = "",
    y_markers: dict[str, float] | None = None,
) -> str:
    """Render a sampled (x, y) series as an ASCII line plot.

    Args:
        xs: x values (monotonic).
        ys: y values.
        width/height: plot grid size in characters.
        title: optional heading.
        y_markers: named horizontal levels (e.g. thresholds) drawn as
            ``-`` lines and labelled on the right margin.

    Returns:
        The rendered plot text.
    """
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length, non-empty")
    y_min = min(min(ys), *(y_markers or {"": min(ys)}).values())
    y_max = max(max(ys), *(y_markers or {"": max(ys)}).values())
    if y_max <= y_min:
        y_max = y_min + 1.0
    x_min, x_max = xs[0], xs[-1]
    if x_max <= x_min:
        x_max = x_min + 1.0
    grid = [[" "] * width for _ in range(height)]

    def row_of(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        return min(height - 1, max(0, int((1.0 - frac) * (height - 1))))

    labels: dict[int, str] = {}
    for name, level in (y_markers or {}).items():
        r = row_of(level)
        for c in range(width):
            if grid[r][c] == " ":
                grid[r][c] = "-"
        labels[r] = name
    for x, y in zip(xs, ys):
        c = min(width - 1, max(0, int((x - x_min) / (x_max - x_min) * (width - 1))))
        grid[row_of(y)][c] = "*"
    lines = [title] if title else []
    for r, row in enumerate(grid):
        suffix = f" {labels[r]}" if r in labels else ""
        lines.append("".join(row) + suffix)
    lines.append(f"x: {x_min:g} .. {x_max:g}   y: {y_min:.3g} .. {y_max:.3g}")
    return "\n".join(lines)


def bar_chart(
    groups: dict[str, dict[str, float]],
    width: int = 50,
    title: str = "",
) -> str:
    """Render grouped horizontal bars (Fig. 5 style).

    Args:
        groups: group label -> {series label -> value}; values are
            rendered relative to the global maximum.
        width: bar width in characters at the maximum value.
        title: optional heading.
    """
    if not groups:
        raise ValueError("no groups to plot")
    peak = max(v for series in groups.values() for v in series.values())
    if peak <= 0:
        peak = 1.0
    label_w = max(
        len(s) for series in groups.values() for s in series
    )
    lines = [title] if title else []
    for group, series in groups.items():
        lines.append(group)
        for name, value in series.items():
            n = int(round(value / peak * width))
            lines.append(
                f"  {name.ljust(label_w)} |{'#' * n}{' ' * (width - n)}| {value:.3f}"
            )
    return "\n".join(lines)
