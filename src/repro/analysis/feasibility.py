"""Feasibility verdicts: what the interval bounds can already decide.

Three verdicts, in decreasing strength:

* :attr:`Verdict.INFEASIBLE` — the simulator **provably raises**
  :class:`~repro.sim.intermittent.TraceTooWeakError` on this point.
  Two proof rules, both conservative:

  - *energy budget*: the work target (plus the unavoidable initial
    restore) exceeds every joule a completed run could ever draw on —
    initial charge plus harvest over the executor's time limit.  Only
    claimed when the commit clamp cannot conjure energy
    (``commit_e <= Th_Bk``), which makes conservation a hard argument.
  - *unpayable restore*: even a full capacitor cannot pay the restore
    cost and re-enter the operating zone (the executor's own hard
    error), **and** charge mode is provably entered — the system
    starts below Th_Cp, or a scheme without the safe zone is forced to
    dip because peak harvest power cannot cover computation.

* :attr:`Verdict.DOMINATED` — every completed run of this point has
  ``PDP >= pdp_js.lo``, and a reference point already achieves a
  strictly better (smaller) PDP.  The point can still *run*; it just
  provably loses a best-PDP comparison.  Search strategies may drop
  such candidates; the sweep engine never does (pruning a runnable
  point would break record parity with a clean sweep).

* :attr:`Verdict.UNKNOWN` — simulate.  Includes every point whose
  preparation raises (those must flow through the simulation path so
  the canonical failure is recorded).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.intervals import RunBounds, bounds_for_point
from repro.circuits.netlist import Netlist
from repro.core.diac import DiacConfig
from repro.dse.explorer import DesignPoint, SynthesisCache
from repro.energy.scenarios import ScenarioSpec

#: Relative slack a proof rule must clear before the analysis claims a
#: point infeasible — bounds are exact in the fluid model, but the
#: executor works in floats and the prune must never beat it by an ulp.
_PROOF_MARGIN = 1e-9


class Verdict(enum.Enum):
    """What the static analysis concluded about one design point."""

    INFEASIBLE = "infeasible"
    DOMINATED = "dominated"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class FeasibilityReport:
    """One verdict, with its justification.

    Attributes:
        verdict: the conclusion.
        reason: human-readable proof sketch (empty for ``UNKNOWN``
            without a note).
        bounds: the interval bounds the verdict was derived from
            (``None`` when preparation failed before bounds existed).
    """

    verdict: Verdict
    reason: str = ""
    bounds: RunBounds | None = None


def assess_run(
    bounds: RunBounds, reference_pdp_js: float | None = None
) -> FeasibilityReport:
    """Judge one run from its bounds alone.

    Args:
        bounds: output of :func:`repro.analysis.intervals.bounds_for_run`.
        reference_pdp_js: exact PDP of a confirmed point in the same
            (scenario, circuit) group; enables the ``DOMINATED`` rule.
    """
    work = bounds.work_target_j
    floor = work + (
        bounds.restore_energy_j if bounds.initial_charge else 0.0
    )
    if bounds.conservative_commit and floor > bounds.budget_j * (
        1.0 + _PROOF_MARGIN
    ):
        return FeasibilityReport(
            verdict=Verdict.INFEASIBLE,
            reason=(
                f"work target {work:.3e} J exceeds the "
                f"{bounds.budget_j:.3e} J energy budget (initial charge "
                "+ harvest over the executor's time limit): the trace "
                "can never sustain the macro task"
            ),
            bounds=bounds,
        )
    if not bounds.restore_payable and bounds.must_enter_charge:
        return FeasibilityReport(
            verdict=Verdict.INFEASIBLE,
            reason=(
                f"restore cost {bounds.restore_energy_j:.3e} J cannot "
                "be paid without dropping below Th_SafeZone, and charge "
                "mode is provably entered"
            ),
            bounds=bounds,
        )
    if (
        reference_pdp_js is not None
        and bounds.pdp_js.lo > reference_pdp_js * (1.0 + _PROOF_MARGIN)
    ):
        return FeasibilityReport(
            verdict=Verdict.DOMINATED,
            reason=(
                f"best-case PDP {bounds.pdp_js.lo:.3e} Js already loses "
                f"to a confirmed {reference_pdp_js:.3e} Js"
            ),
            bounds=bounds,
        )
    return FeasibilityReport(verdict=Verdict.UNKNOWN, bounds=bounds)


def assess_point(
    netlist: Netlist,
    point: DesignPoint,
    base_config: DiacConfig | None = None,
    cache: SynthesisCache | None = None,
    scenario: ScenarioSpec | None = None,
    reference_pdp_js: float | None = None,
) -> FeasibilityReport:
    """Judge one (netlist, point, scenario) without simulating it.

    Never raises: a point whose preparation fails (infeasible margin,
    Th_Cp above the capacitor, a bad criteria set, ...) is reported as
    ``UNKNOWN`` so the simulation path produces the canonical failure
    record — the analysis only ever *adds* knowledge, it never changes
    what a sweep would have reported about an error.
    """
    try:
        bounds = bounds_for_point(
            netlist,
            point,
            base_config=base_config,
            cache=cache,
            scenario=scenario,
        )
    except Exception as error:
        return FeasibilityReport(
            verdict=Verdict.UNKNOWN,
            reason=f"static preparation failed ({error}); simulating",
        )
    return assess_run(bounds, reference_pdp_js=reference_pdp_js)
