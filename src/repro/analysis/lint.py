"""Design lint: rule-based static checks with linter ergonomics.

Three rule families, each with stable IDs so findings can be selected
or suppressed like a real linter (``repro lint --select N --ignore
N004``):

* ``N***`` — netlist structure: combinational cycles, floating and
  multiply-driven nets, undriven primary outputs, dead gates, gate
  arity (width) mismatches;
* ``T***`` — task graph / NVM plan: nodes whose own energy exceeds the
  per-burst budget, commits that cannot fit the backup reserve, empty
  graphs and over-budget partitions;
* ``C***`` — threshold configuration: ordering violations, thresholds
  past the storage capacity, non-positive levels, suspicious safe-zone
  margins.

``error`` findings make ``repro lint`` exit nonzero; ``warning``
findings are reported but do not fail the run.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.circuits.netlist import Netlist, NetlistError
from repro.core.replacement import NvmPlan
from repro.energy.thresholds import ThresholdSet

ERROR = "error"
WARNING = "warning"

#: Relative slack before a budget comparison is flagged — synthesis
#: energies are floats and an over-budget report must mean it.
_BUDGET_SLACK = 1e-9


@dataclass(frozen=True)
class LintRule:
    """One registered check.

    Attributes:
        rule_id: stable identifier (``N001``, ``T002``, ``C001``, ...).
        severity: ``"error"`` or ``"warning"``.
        summary: one-line description shown by ``repro lint --rules``.
    """

    rule_id: str
    severity: str
    summary: str


@dataclass(frozen=True)
class LintFinding:
    """One violation of one rule at one location.

    Attributes:
        rule_id: the violated rule.
        severity: copied from the rule at emission time.
        message: human-readable description of this occurrence.
        subject: net / node / field the finding points at (may be empty).
        source: circuit, file or config the finding came from.
    """

    rule_id: str
    severity: str
    message: str
    subject: str = ""
    source: str = ""

    def render(self) -> str:
        """Format as ``source: RULE severity: message``."""
        prefix = f"{self.source}: " if self.source else ""
        return f"{prefix}{self.rule_id} {self.severity}: {self.message}"


_RULES = (
    LintRule("N001", ERROR, "combinational cycle (no DFF on the loop)"),
    LintRule("N002", ERROR, "gate reads a floating (undriven) net"),
    LintRule("N003", ERROR, "primary output is undriven"),
    LintRule("N004", WARNING, "dead gate: drives no gate, FF or output"),
    LintRule("N005", ERROR, "net is driven by more than one gate"),
    LintRule("N006", ERROR, "gate arity/width mismatch for its type"),
    LintRule("N007", ERROR, "netlist failed to parse"),
    LintRule("T001", ERROR, "task node energy exceeds the per-burst budget"),
    LintRule("T002", ERROR, "worst-case commit cannot fit the backup reserve"),
    LintRule("T003", WARNING, "partition energy exceeds the per-burst budget"),
    LintRule("T004", ERROR, "task graph is empty"),
    LintRule("C001", ERROR, "thresholds are not strictly increasing"),
    LintRule("C002", ERROR, "threshold exceeds the storage capacity"),
    LintRule("C003", ERROR, "threshold is not positive"),
    LintRule("C004", WARNING, "safe-zone margin is suspiciously wide"),
)

#: Registry of every lint rule, keyed by ID (insertion-ordered).
LINT_RULES: Mapping[str, LintRule] = {rule.rule_id: rule for rule in _RULES}


def _finding(
    rule_id: str, message: str, subject: str = "", source: str = ""
) -> LintFinding:
    rule = LINT_RULES[rule_id]
    return LintFinding(
        rule_id=rule.rule_id,
        severity=rule.severity,
        message=message,
        subject=subject,
        source=source,
    )


def filter_findings(
    findings: Iterable[LintFinding],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[LintFinding]:
    """Apply ``--select`` / ``--ignore`` prefix filters.

    Both accept full IDs (``N004``) or family prefixes (``N``); a
    finding survives when it matches some ``select`` prefix (all, when
    ``select`` is None) and no ``ignore`` prefix.
    """
    chosen = None if select is None else tuple(select)
    dropped = () if ignore is None else tuple(ignore)
    kept = []
    for finding in findings:
        if chosen is not None and not any(
            finding.rule_id.startswith(p) for p in chosen
        ):
            continue
        if any(finding.rule_id.startswith(p) for p in dropped):
            continue
        kept.append(finding)
    return kept


def classify_netlist_error(error: Exception, source: str = "") -> LintFinding:
    """Map a parse/construction exception onto a netlist rule.

    Multiply-driven nets and arity mismatches are impossible to
    represent in a constructed :class:`Netlist` — they raise while
    parsing — so the file-oriented lint path funnels them here.
    """
    text = str(error)
    if "combinational cycle" in text:
        return _finding("N001", text, source=source)
    if "reads undriven net" in text:
        return _finding("N002", text, source=source)
    if "is undriven" in text:
        return _finding("N003", text, source=source)
    if "already driven" in text:
        return _finding("N005", text, source=source)
    if "input(s), got" in text or "at least" in text:
        return _finding("N006", text, source=source)
    return _finding("N007", text, source=source)


def lint_netlist(netlist: Netlist) -> list[LintFinding]:
    """Run the ``N***`` structural rules over a constructed netlist."""
    findings: list[LintFinding] = []
    source = netlist.name
    driven = netlist.gates
    for gate in driven.values():
        for src in gate.inputs:
            if src not in driven:
                findings.append(
                    _finding(
                        "N002",
                        f"gate {gate.name!r} reads undriven net {src!r}",
                        subject=src,
                        source=source,
                    )
                )
    for out in netlist.outputs:
        if out not in driven:
            findings.append(
                _finding(
                    "N003",
                    f"primary output {out!r} is undriven",
                    subject=out,
                    source=source,
                )
            )
    # Cycle detection only makes sense once every net resolves; on a
    # netlist with floating nets the topological walk would conflate
    # the two defects.
    if not findings:
        try:
            netlist.topological_order()
        except NetlistError as error:
            findings.append(
                _finding("N001", str(error), source=source)
            )
    fanout = netlist.fanout_map()
    output_nets = set(netlist.outputs)
    for gate in driven.values():
        if not gate.is_combinational:
            continue
        if not fanout.get(gate.name) and gate.name not in output_nets:
            findings.append(
                _finding(
                    "N004",
                    f"gate {gate.name!r} drives nothing",
                    subject=gate.name,
                    source=source,
                )
            )
    return findings


def lint_plan(
    plan: NvmPlan, thresholds: ThresholdSet | None = None
) -> list[LintFinding]:
    """Run the ``T***`` rules over an NVM insertion plan.

    Args:
        plan: output of :func:`repro.core.replacement.insert_nvm`.
        thresholds: when given, enables the backup-reserve check
            (``T002``) against ``thresholds.backup_reserve_j``.
    """
    findings: list[LintFinding] = []
    source = plan.graph.netlist.name
    if not plan.graph.nodes:
        return [_finding("T004", "task graph has no nodes", source=source)]
    for node_id in plan.infeasible:
        energy = plan.graph.nodes[node_id].feature.energy_j
        findings.append(
            _finding(
                "T001",
                f"node {node_id!r} needs {energy:.3e} J in one burst "
                f"but the budget is {plan.budget_j:.3e} J",
                subject=node_id,
                source=source,
            )
        )
    if thresholds is not None:
        commit = plan.backup_array().write_cost(plan.max_commit_bits)
        reserve = thresholds.backup_reserve_j
        if commit.energy_j > reserve * (1.0 + _BUDGET_SLACK):
            findings.append(
                _finding(
                    "T002",
                    f"worst commit ({plan.max_commit_bits} bits, "
                    f"{commit.energy_j:.3e} J) exceeds the backup "
                    f"reserve Th_Bk - Th_Off = {reserve:.3e} J",
                    source=source,
                )
            )
    limit = plan.budget_j * (1.0 + _BUDGET_SLACK)
    for index, partition in enumerate(plan.schedule()):
        if partition.energy_j > limit:
            findings.append(
                _finding(
                    "T003",
                    f"partition {index} spends {partition.energy_j:.3e} J "
                    f"against a {plan.budget_j:.3e} J budget",
                    subject=partition.node_ids[0] if partition.node_ids else "",
                    source=source,
                )
            )
    return findings


_THRESHOLD_ORDER = ("off", "backup", "safe", "sense", "compute", "transmit")


def lint_thresholds(
    values: Mapping[str, float] | ThresholdSet, source: str = ""
) -> list[LintFinding]:
    """Run the ``C***`` rules over a threshold configuration.

    Accepts either a built :class:`ThresholdSet` or a raw mapping with
    keys ``off``/``backup``/``safe``/``sense``/``compute``/``transmit``
    and ``e_max`` (joules) — raw input is the point: an inverted
    configuration can never be *constructed*, but it can be linted.
    """
    if isinstance(values, ThresholdSet):
        values = {
            "off": values.off_j,
            "backup": values.backup_j,
            "safe": values.safe_j,
            "sense": values.sense_j,
            "compute": values.compute_j,
            "transmit": values.transmit_j,
            "e_max": values.e_max_j,
        }
    findings: list[LintFinding] = []
    levels = {name: float(values.get(name, 0.0)) for name in _THRESHOLD_ORDER}
    e_max = float(values.get("e_max", 0.0))
    for name, level in {**levels, "e_max": e_max}.items():
        if level <= 0.0:
            findings.append(
                _finding(
                    "C003",
                    f"threshold {name!r} must be positive, got {level:.6g}",
                    subject=name,
                    source=source,
                )
            )
    for low, high in zip(_THRESHOLD_ORDER, _THRESHOLD_ORDER[1:]):
        if levels[low] >= levels[high]:
            findings.append(
                _finding(
                    "C001",
                    f"{low} ({levels[low]:.6g} J) must lie strictly below "
                    f"{high} ({levels[high]:.6g} J)",
                    subject=high,
                    source=source,
                )
            )
    if levels["transmit"] > e_max > 0.0:
        findings.append(
            _finding(
                "C002",
                f"transmit ({levels['transmit']:.6g} J) exceeds the "
                f"storage capacity ({e_max:.6g} J)",
                subject="transmit",
                source=source,
            )
        )
    margin = levels["safe"] - levels["backup"]
    if e_max > 0.0 and margin > 0.5 * (e_max - levels["backup"]):
        findings.append(
            _finding(
                "C004",
                f"safe-zone margin {margin:.6g} J spans more than half "
                "the headroom above Th_Bk; backups will fire almost "
                "immediately after every resume",
                subject="safe",
                source=source,
            )
        )
    return findings
