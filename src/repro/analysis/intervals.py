"""Interval bounds on intermittent execution — the static half of ETAP.

:func:`bounds_for_run` computes sound lower/upper bounds on everything
:class:`~repro.sim.intermittent.ExecutionResult` reports for a
*completed* macro-task run, without running the event loop.  The
derivation leans on exact invariants of the fluid executor
(:class:`~repro.sim.intermittent.IntermittentExecutor.run`):

* every backup is followed by exactly one restore before further
  progress, so ``n_restores == n_backups`` — plus one initial restore
  when the capacitor starts at or below Th_Cp (the executor pays a
  restore on its first resume even though nothing was committed);
* ``total_energy`` counts compute work (first-pass *and* re-executed),
  commit energy and restore energy — never sleep drain or charging;
* re-execution per restore is at most ``REEXECUTION_FRACTION`` of the
  scheme's re-execution window (the commit-point rule);
* a completed run's wall clock never exceeds ``t_limit`` plus one trace
  period: the time-limit check runs at the top of every iteration and
  one iteration advances at most one segment;
* energy is conserved up to the commit clamp (``max(e - commit_e, 0)``
  can conjure at most ``commit_e - Th_Bk`` per backup, and only when the
  commit costs more than the backup threshold — commits fire at or
  above Th_Bk).

The backup count is the one genuinely dynamic quantity; it is bracketed
by a harvest-budget argument (each backup/restore pair consumes real
energy, and a completed run only ever sees ``E_budget`` joules) and, for
schemes without the safe zone under a trace whose peak power cannot
cover computation, a forced-dip argument (each active stretch performs
a bounded amount of work before the capacitor hits Th_SafeZone).

Everything else follows arithmetically, in ``O(segments)`` time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import cast

from repro.calibration import (
    INITIAL_ENERGY_FRACTION,
    MACRO_TASK_ENERGY_RATIO,
    REEXECUTION_FRACTION,
)
from repro.circuits.netlist import Netlist
from repro.core.codegen import GeneratedCode
from repro.core.diac import DiacConfig, DiacDesign, DiacSynthesizer
from repro.core.replacement import insert_nvm
from repro.dse.explorer import DesignPoint, SynthesisCache, _point_config
from repro.energy.harvester import HarvestTrace
from repro.energy.scenarios import ScenarioSpec
from repro.energy.thresholds import ThresholdSet
from repro.evaluation import Environment, build_environment
from repro.sim.intermittent import SchemeProfile


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` bounding one result quantity."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"interval hi {self.hi} below lo {self.lo}")

    def contains(
        self, value: float, rel_tol: float = 1e-9, abs_tol: float = 1e-15
    ) -> bool:
        """Whether ``value`` lies in the interval, up to float tolerance."""
        slack_lo = max(abs_tol, rel_tol * abs(self.lo))
        slack_hi = max(abs_tol, rel_tol * abs(self.hi))
        return self.lo - slack_lo <= value <= self.hi + slack_hi

    @property
    def width(self) -> float:
        """``hi - lo``."""
        return self.hi - self.lo


@dataclass(frozen=True)
class RunBounds:
    """Sound bounds on one (profile, environment, work target) run.

    Every interval brackets the corresponding
    :class:`~repro.sim.intermittent.ExecutionResult` field of any run
    the executor *completes*; when no completed run exists the
    intervals are vacuous (and :mod:`repro.analysis.feasibility` can
    often prove it).

    Attributes:
        scheme: profile name.
        work_target_j: useful work the macro task requires.
        energy_j: bounds on ``total_energy_j``.
        active_time_s: bounds on ``active_time_s``.
        wall_time_s: bounds on ``wall_time_s``.
        pdp_js: bounds on ``pdp_js``.
        n_backups: bounds on the backup count.
        budget_j: total energy a completed run can ever draw on —
            initial charge plus harvest over the time limit (plus one
            trailing segment).
        commit_energy_j / restore_energy_j: per-event NVM costs.
        initial_charge: the run provably starts in charge mode
            (``E_init <= Th_Cp``), which costs one extra restore.
        restore_payable: whether a restore can ever be paid without
            dropping below Th_SafeZone (the executor's hard error when
            it cannot).
        must_enter_charge: charge mode is provably entered at least
            once (initial charge, or a forced dip under a scheme
            without the safe zone).
        conservative_commit: the commit clamp can never conjure energy
            (``commit_e <= Th_Bk``), which is what makes the harvest
            budget a hard feasibility bound.
    """

    scheme: str
    work_target_j: float
    energy_j: Interval
    active_time_s: Interval
    wall_time_s: Interval
    pdp_js: Interval
    n_backups: Interval
    budget_j: float
    commit_energy_j: float
    restore_energy_j: float
    initial_charge: bool
    restore_payable: bool
    must_enter_charge: bool
    conservative_commit: bool


def bounds_for_run(
    profile: SchemeProfile,
    e_max_j: float,
    trace: HarvestTrace,
    thresholds: ThresholdSet | None = None,
    sleep_drain_w: float = 0.0,
    work_target_j: float | None = None,
    max_cycles: float = 400.0,
) -> RunBounds:
    """Bound one executor run; same signature defaults as the executor.

    Args:
        profile: the scheme under test.
        e_max_j: storage capacity of the evaluation capacitor.
        trace: cyclic harvest trace.
        thresholds: threshold set; derived from ``e_max_j`` when omitted.
        sleep_drain_w: safe-zone standby drain (only the sign matters to
            the bounds; drain never adds budget).
        work_target_j: useful work required (the paper's
            ``MACRO_TASK_ENERGY_RATIO x e_max`` when omitted).
        max_cycles: trace periods before the executor gives up.
    """
    if e_max_j <= 0:
        raise ValueError("e_max_j must be positive")
    th = thresholds or ThresholdSet.from_e_max(e_max_j)
    work = (
        work_target_j
        if work_target_j is not None
        else MACRO_TASK_ENERGY_RATIO * e_max_j
    )
    array = profile.backup_array()
    commit = array.write_cost(profile.commit_bits)
    restore = array.read_cost(profile.restore_bits)
    commit_e, commit_t = commit.energy_j, commit.latency_s
    restore_e, restore_t = restore.energy_j, restore.latency_s
    p_active = profile.active_power_w
    window_j = REEXECUTION_FRACTION * max(0.0, profile.reexec_window_j)

    e_init = INITIAL_ENERGY_FRACTION * e_max_j
    t_limit = max_cycles * trace.period_s
    # A completed run's clock never exceeds the limit by more than one
    # segment: the limit check guards every iteration, and an iteration
    # advances at most seg_remaining <= period.
    budget = e_init + trace.energy_between(0.0, t_limit + trace.period_s)

    initial_charge = not e_init > th.compute_j
    extra_restores = 1 if initial_charge else 0
    resume_floor = min(th.compute_j + restore_e, e_max_j) - restore_e
    restore_payable = resume_floor >= th.safe_j
    conservative_commit = commit_e <= th.backup_j

    # -- backup count ----------------------------------------------------------
    # Lower bound: without the safe zone, every dip is a backup, and when
    # the trace's peak power cannot cover computation each active stretch
    # drains the capacitor at >= (p_active - peak) W, bounding the work a
    # stretch can perform before Th_SafeZone forces the next dip.
    n_lb = 0
    must_dip = False
    peak = trace.peak_power_w
    if peak < p_active:
        drain = p_active - peak
        first_start = resume_floor if initial_charge else e_init
        w_first = p_active * max(0.0, first_start - th.safe_j) / drain
        w_next = p_active * max(0.0, resume_floor - th.safe_j) / drain
        # Strict margin: only claim a forced dip when the target clearly
        # exceeds what the most generous stretch could deliver.
        must_dip = work > w_first * (1.0 + 1e-9) + 1e-15
        if not profile.uses_safe_zone and must_dip and w_next > 0.0:
            n_lb = max(0, math.ceil((work - w_first) / w_next - 1e-9))

    # Upper bound: each backup/restore pair consumes at least
    # min(commit_e, Th_Bk) + restore_e real joules (the commit clamp can
    # conjure at most commit_e - Th_Bk), and a completed run has only
    # ``budget`` joules to spend after the work itself is paid for.
    pair_net = min(commit_e, th.backup_j) + restore_e
    headroom = budget - work - extra_restores * restore_e
    n_budget = int(headroom / pair_net + 1e-9) if headroom > 0.0 else 0
    n_ub = max(n_lb, n_budget)

    # -- result quantities -----------------------------------------------------
    pair_e = commit_e + restore_e
    pair_t = commit_t + restore_t
    # Re-execution per restore is capped by the commit-point rule and by
    # the work performed so far.
    reexec_ub = n_ub * min(window_j, work) if window_j > 0.0 else 0.0
    conjure_ub = n_ub * max(0.0, commit_e - th.backup_j)

    energy_lo = work + n_lb * pair_e + extra_restores * restore_e
    energy_hi = work + reexec_ub + n_ub * pair_e + extra_restores * restore_e
    # Conservation caps the ceiling too (total_energy excludes sleep
    # drain and charging, both non-negative draws on the same budget).
    energy_hi = max(energy_lo, min(energy_hi, budget + conjure_ub))

    active_lo = work / p_active + n_lb * pair_t + extra_restores * restore_t
    active_hi = (
        (work + reexec_ub) / p_active
        + n_ub * pair_t
        + extra_restores * restore_t
    )
    wall_lo = work / p_active
    wall_hi = t_limit + trace.period_s

    energy = Interval(energy_lo, energy_hi)
    active = Interval(active_lo, max(active_lo, active_hi))
    return RunBounds(
        scheme=profile.name,
        work_target_j=work,
        energy_j=energy,
        active_time_s=active,
        wall_time_s=Interval(wall_lo, max(wall_lo, wall_hi)),
        pdp_js=Interval(energy.lo * active.lo, energy.hi * active.hi),
        n_backups=Interval(float(n_lb), float(n_ub)),
        budget_j=budget,
        commit_energy_j=commit_e,
        restore_energy_j=restore_e,
        initial_charge=initial_charge,
        restore_payable=restore_payable,
        must_enter_charge=initial_charge
        or (not profile.uses_safe_zone and must_dip),
        conservative_commit=conservative_commit,
    )


@dataclass(frozen=True)
class StaticPreparedPoint:
    """The synthesis front half of a point, without code generation.

    The static twin of :class:`~repro.dse.explorer.PreparedPoint`: the
    same cached characterization, replacement plan, environment and
    scheme profile — everything the bounds and the linter read — but no
    HDL emission or round-trip validation, which the static path never
    consults.  ``design.code`` is deliberately left unset.
    """

    point: DesignPoint
    scenario: ScenarioSpec
    design: DiacDesign
    environment: Environment
    profile: SchemeProfile
    work_target_j: float


def prepare_static(
    netlist: Netlist,
    point: DesignPoint,
    base_config: DiacConfig | None = None,
    cache: SynthesisCache | None = None,
    scenario: ScenarioSpec | None = None,
) -> StaticPreparedPoint:
    """Derive a point's profile/environment without generating code.

    Mirrors :func:`repro.dse.explorer.prepare_point` step for step —
    same cached synthesis stage, same budget derivation, same
    margin-then-scale threshold knobs, same ``ValueError`` when Th_Cp
    exceeds the capacitor — but skips HDL generation and the round-trip
    check, which only the simulation path needs.  The returned profile,
    environment and work target are therefore *identical* to the ones
    the simulator would run (pinned by the differential tests).

    Raises:
        ValueError: for the same threshold/criteria rejections
            :func:`~repro.dse.explorer.prepare_point` raises.
    """
    from repro.baselines.schemes import profile_diac

    base = base_config or DiacConfig()
    scenario = scenario or ScenarioSpec()
    config = _point_config(base, point)
    if cache is None:  # NB: an empty cache is falsy (it has __len__).
        cache = SynthesisCache()
    report, shaped, policy_config = cache.stage_for(netlist, config)

    budget = point.budget_scale * DiacSynthesizer(config).derive_budget_j(
        netlist
    )
    config = replace(config, budget_j=budget)
    plan = insert_nvm(
        shaped, budget, technology=config.technology, criteria=config.criteria
    )
    # The static path never reads generated HDL; the cast records that
    # ``code`` is intentionally absent rather than silently None-typed.
    design = DiacDesign(
        netlist=netlist,
        report=report,
        graph=plan.graph,
        plan=plan,
        code=cast(GeneratedCode, None),
        config=config,
        policy_config=policy_config,
    )

    env = build_environment(design, scenario=scenario)
    thresholds = env.thresholds
    if point.safe_margin_scale is not None:
        thresholds = thresholds.with_safe_margin(
            point.safe_margin_scale * thresholds.safe_zone_margin_j
        )
    if point.threshold_scale != 1.0:
        thresholds = thresholds.scaled(point.threshold_scale)
    if thresholds.compute_j > env.e_max_j:
        raise ValueError(
            f"threshold_scale {point.threshold_scale:g} puts Th_Cp "
            f"({thresholds.compute_j:.3e} J) above the capacitor "
            f"capacity ({env.e_max_j:.3e} J)"
        )
    if thresholds is not env.thresholds:
        env = replace(env, thresholds=thresholds)

    profile = profile_diac(design, optimized=point.use_safe_zone)
    return StaticPreparedPoint(
        point=point,
        scenario=scenario,
        design=design,
        environment=env,
        profile=profile,
        work_target_j=env.n_passes * profile.pass_energy_j,
    )


def bounds_for_point(
    netlist: Netlist,
    point: DesignPoint,
    base_config: DiacConfig | None = None,
    cache: SynthesisCache | None = None,
    scenario: ScenarioSpec | None = None,
) -> RunBounds:
    """Bound the run :func:`~repro.dse.explorer.evaluate_point` would make."""
    prepared = prepare_static(
        netlist,
        point,
        base_config=base_config,
        cache=cache,
        scenario=scenario,
    )
    env = prepared.environment
    return bounds_for_run(
        prepared.profile,
        e_max_j=env.e_max_j,
        trace=env.trace,
        thresholds=env.thresholds,
        sleep_drain_w=env.sleep_drain_w,
        work_target_j=prepared.work_target_j,
    )
