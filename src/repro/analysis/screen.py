"""Zero-cost static round 0 for successive halving.

The halving strategy's opening pool is its whole simulation bill: every
sampled candidate is simulated at least once (at screening fidelity).
:class:`StaticScreener` shrinks that pool *before the first simulation*
using only the interval analysis:

* candidates proven ``INFEASIBLE`` in **every** (circuit, scenario)
  group are dropped outright — no simulation can produce a record for
  them;
* candidates whose best-case PDP is provably beaten by another
  candidate's worst-case PDP in every group are bound-dominated and
  dropped;
* the rest are ranked by their optimistic (lower-bound) PDP, averaged
  over groups, and the pool is cut to a ``keep`` fraction.

Dropping candidates from a *sampled* pool needs no soundness argument
beyond the verdicts themselves — the strategy was free to sample any
pool, so a smaller, better-ranked one is just a better prior.  The
parity guarantees live in the sweep engine, which only ever prunes
``INFEASIBLE`` points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.feasibility import Verdict, assess_run
from repro.analysis.intervals import RunBounds, bounds_for_point
from repro.circuits.netlist import Netlist
from repro.core.diac import DiacConfig
from repro.dse.explorer import DesignPoint, SynthesisCache
from repro.energy.scenarios import ScenarioSpec


@dataclass
class StaticScreener:
    """Rank and cut a candidate pool with interval bounds only.

    Args:
        netlists: circuit name -> netlist, the groups candidates will
            be simulated under.
        scenarios: scenario axis of the search.
        base_config: synthesis defaults shared by every point (must
            match the engine's, or the ranking screens for the wrong
            sweep).
        keep: fraction of analysable candidates kept after ranking.
        min_keep: never cut the pool below this many candidates (the
            halving strategy needs at least 2).
    """

    netlists: dict[str, Netlist]
    scenarios: tuple[ScenarioSpec, ...] = (ScenarioSpec(),)
    base_config: DiacConfig | None = None
    keep: float = 0.5
    min_keep: int = 2
    _caches: dict[str, SynthesisCache] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if not self.netlists:
            raise ValueError("screener needs at least one circuit")
        if not 0.0 < self.keep <= 1.0:
            raise ValueError("keep must be in (0, 1]")
        if self.min_keep < 2:
            raise ValueError("min_keep must be >= 2")

    def _bounds(self, point: DesignPoint) -> list[RunBounds | None]:
        """Per-(circuit, scenario) bounds; None where analysis fails."""
        rows: list[RunBounds | None] = []
        for circuit, netlist in self.netlists.items():
            cache = self._caches.setdefault(circuit, SynthesisCache())
            for scenario in self.scenarios:
                try:
                    rows.append(
                        bounds_for_point(
                            netlist,
                            point,
                            base_config=self.base_config,
                            cache=cache,
                            scenario=scenario,
                        )
                    )
                except Exception:
                    # Unanalysable points keep a seat: only a proof may
                    # cost a candidate its simulation.
                    rows.append(None)
        return rows

    def screen(self, points: list[DesignPoint]) -> list[DesignPoint]:
        """Return the kept candidates, best (optimistic PDP) first.

        Never returns fewer than ``min_keep`` candidates (unless given
        fewer); candidates the analysis could not bound rank last but
        are never dropped by a *proof* (only by the ranking cut).
        """
        if len(points) <= self.min_keep:
            return list(points)
        all_bounds = [self._bounds(point) for point in points]
        survivors: list[int] = []
        for index, rows in enumerate(all_bounds):
            feasible_somewhere = any(
                row is None
                or assess_run(row).verdict is not Verdict.INFEASIBLE
                for row in rows
            )
            if feasible_somewhere:
                survivors.append(index)
        if len(survivors) < self.min_keep:
            # Everything proved infeasible: screening cannot help, and
            # the caller still needs a pool to fail loudly with.
            return list(points)

        def dominated(a: int, b: int) -> bool:
            """Whether candidate ``b`` provably beats ``a`` everywhere."""
            strict = False
            for row_a, row_b in zip(all_bounds[a], all_bounds[b]):
                if row_a is None or row_b is None:
                    return False
                if row_b.pdp_js.hi > row_a.pdp_js.lo:
                    return False
                strict = strict or row_b.pdp_js.hi < row_a.pdp_js.lo
            return strict

        undominated = [
            a
            for a in survivors
            if not any(b != a and dominated(a, b) for b in survivors)
        ]
        if len(undominated) >= self.min_keep:
            survivors = undominated

        def score(index: int) -> float:
            total, groups = 0.0, 0
            for row in all_bounds[index]:
                if row is None:
                    continue
                groups += 1
                if assess_run(row).verdict is Verdict.INFEASIBLE:
                    total += math.inf
                else:
                    total += row.pdp_js.lo
            return total / groups if groups else math.inf

        ranked = sorted(survivors, key=score)
        cut = max(self.min_keep, math.ceil(len(ranked) * self.keep))
        return [points[index] for index in ranked[:cut]]
