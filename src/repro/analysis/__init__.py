"""Static analysis: prove-or-prune before you simulate.

ETAP-style interval analysis for the intermittent executor plus a
rule-based design linter.  Three layers:

* :mod:`repro.analysis.intervals` — closed-form lower/upper bounds on
  the energy, time and PDP of a completed macro-task run, derived from
  the scheme profile, the threshold set and the harvest trace's power
  envelope — no event loop, ``O(tasks + segments)``;
* :mod:`repro.analysis.feasibility` — verdicts built on those bounds:
  ``INFEASIBLE`` (the simulator provably raises), ``DOMINATED`` (the
  bound interval provably loses to a reference PDP) or ``UNKNOWN``
  (simulate);
* :mod:`repro.analysis.lint` — static checks over netlists, task
  graphs and threshold configurations, each with a rule ID and a
  severity, filterable like a real linter (``repro lint``);
* :mod:`repro.analysis.screen` — a zero-cost static round 0 for
  :class:`~repro.dse.strategies.SuccessiveHalvingStrategy`, cutting
  the opening pool before the first simulation.

Soundness contract (pinned by ``tests/test_analysis.py``): for every
run the simulator *completes*, ``lower <= simulated <= upper`` holds
for energy, active time, wall time and PDP; for every point the
analysis calls ``INFEASIBLE``, the simulator raises.
"""

from repro.analysis.feasibility import (
    FeasibilityReport,
    Verdict,
    assess_point,
    assess_run,
)
from repro.analysis.intervals import (
    Interval,
    RunBounds,
    StaticPreparedPoint,
    bounds_for_point,
    bounds_for_run,
    prepare_static,
)
from repro.analysis.lint import (
    LINT_RULES,
    LintFinding,
    filter_findings,
    lint_netlist,
    lint_plan,
    lint_thresholds,
)
from repro.analysis.screen import StaticScreener

__all__ = [
    "FeasibilityReport",
    "Interval",
    "LINT_RULES",
    "LintFinding",
    "RunBounds",
    "StaticPreparedPoint",
    "StaticScreener",
    "Verdict",
    "assess_point",
    "assess_run",
    "bounds_for_point",
    "bounds_for_run",
    "filter_findings",
    "lint_netlist",
    "lint_plan",
    "lint_thresholds",
    "prepare_static",
]
