"""``python -m repro`` — the "prototyped DIAC design tool" CLI.

The paper's conclusion promises "a prototyped design tool" for
intermittent-aware synthesis; :mod:`repro.cli` is that tool's front
end.
"""

from repro.cli import main

raise SystemExit(main())
