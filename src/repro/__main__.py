"""``python -m repro`` — the DIAC design-tool CLI."""

from repro.cli import main

raise SystemExit(main())
