"""PDP aggregation — the numbers behind Fig. 5 and the in-text averages.

The paper reports, per suite, the average PDP improvement of DIAC over
NV-based and NV-clustering (36/41/34 % and 25/33/28 % for
ISCAS-89/ITC-99/MCNC), and of optimized DIAC over all three for MCNC
(61/56/38 %).  This module computes those aggregates from a list of
:class:`~repro.evaluation.CircuitEvaluation` results.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.evaluation import CircuitEvaluation

#: The in-text improvement claims of Section IV-B, used by the
#: reproduction report to show paper-vs-measured side by side.
PAPER_CLAIMS = {
    ("DIAC", "NV-based"): {"iscas89": 36.0, "itc99": 41.0, "mcnc": 34.0},
    ("DIAC", "NV-clustering"): {"iscas89": 25.0, "itc99": 33.0, "mcnc": 28.0},
    ("Optimized DIAC", "NV-based"): {"mcnc": 61.0},
    ("Optimized DIAC", "NV-clustering"): {"mcnc": 56.0},
    ("Optimized DIAC", "DIAC"): {"mcnc": 38.0},
}


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def improvement_pct(
    evaluations: Iterable[CircuitEvaluation],
    scheme: str,
    versus: str,
) -> float:
    """Average PDP improvement of ``scheme`` over ``versus``, percent."""
    return mean([e.improvement_pct(scheme, versus) for e in evaluations])


def suite_improvements(
    evaluations: Iterable[CircuitEvaluation],
    scheme: str,
    versus: str,
) -> dict[str, float]:
    """Per-suite average improvement of ``scheme`` over ``versus``."""
    by_suite: dict[str, list[CircuitEvaluation]] = {}
    for ev in evaluations:
        by_suite.setdefault(ev.suite, []).append(ev)
    return {
        suite: improvement_pct(members, scheme, versus)
        for suite, members in sorted(by_suite.items())
    }


def normalized_table(
    evaluations: Iterable[CircuitEvaluation],
    baseline: str = "NV-based",
) -> dict[str, dict[str, float]]:
    """Circuit -> scheme -> normalized PDP (the Fig. 5 data)."""
    return {ev.name: ev.normalized_pdp(baseline) for ev in evaluations}


def paper_vs_measured(
    evaluations: list[CircuitEvaluation],
) -> list[dict[str, object]]:
    """Rows comparing every in-text claim against the measured value."""
    rows: list[dict[str, object]] = []
    for (scheme, versus), per_suite in PAPER_CLAIMS.items():
        measured = suite_improvements(evaluations, scheme, versus)
        for suite, claim in per_suite.items():
            if suite not in measured:
                continue
            rows.append(
                {
                    "scheme": scheme,
                    "versus": versus,
                    "suite": suite,
                    "paper_pct": claim,
                    "measured_pct": round(measured[suite], 1),
                }
            )
    return rows
