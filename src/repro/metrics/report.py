"""Plain-text tables for the CLI, benchmarks and examples.

Renders the Fig. 5-style comparisons (normalized PDP per scheme, paper
claim vs. measured) and generic aligned tables without any third-party
dependency.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: column names.
        rows: cell values (stringified with ``format_cell``).
        title: optional line printed above the table.

    Returns:
        The rendered table text.
    """
    def format_cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    text_rows = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_normalized_pdp(
    table: dict[str, dict[str, float]],
    scheme_order: Sequence[str],
    title: str = "Normalized PDP (lower is better, NV-based = 1.0)",
) -> str:
    """Render the Fig. 5 normalized-PDP table."""
    headers = ["circuit", *scheme_order]
    rows = [
        [name, *[values[s] for s in scheme_order]]
        for name, values in table.items()
    ]
    return format_table(headers, rows, title=title)


def format_paper_vs_measured(rows: list[dict[str, object]]) -> str:
    """Render the in-text-claims comparison table."""
    headers = ["scheme", "versus", "suite", "paper %", "measured %"]
    body = [
        [r["scheme"], r["versus"], r["suite"], r["paper_pct"], r["measured_pct"]]
        for r in rows
    ]
    return format_table(headers, body, title="Paper vs measured PDP improvements")
