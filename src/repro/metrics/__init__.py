"""PDP metrics, cross-scenario robustness, and report formatting.

The paper's headline numbers are normalized power-delay products and
improvement percentages (Fig. 5, Section IV-C); this package computes
them, checks them against the published claims, and scores designs
across harvest scenarios.
"""

from repro.metrics.pdp import (
    PAPER_CLAIMS,
    improvement_pct,
    mean,
    normalized_table,
    paper_vs_measured,
    suite_improvements,
)
from repro.metrics.report import (
    format_normalized_pdp,
    format_paper_vs_measured,
    format_table,
)
from repro.metrics.robustness import (
    RobustnessEntry,
    best_robust,
    format_robustness,
    robustness_report,
)

__all__ = [
    "PAPER_CLAIMS",
    "RobustnessEntry",
    "best_robust",
    "format_robustness",
    "robustness_report",
    "format_normalized_pdp",
    "format_paper_vs_measured",
    "format_table",
    "improvement_pct",
    "mean",
    "normalized_table",
    "paper_vs_measured",
    "suite_improvements",
]
