"""PDP metrics, aggregation, and report formatting."""

from repro.metrics.pdp import (
    PAPER_CLAIMS,
    improvement_pct,
    mean,
    normalized_table,
    paper_vs_measured,
    suite_improvements,
)
from repro.metrics.report import (
    format_normalized_pdp,
    format_paper_vs_measured,
    format_table,
)

__all__ = [
    "PAPER_CLAIMS",
    "format_normalized_pdp",
    "format_paper_vs_measured",
    "format_table",
    "improvement_pct",
    "mean",
    "normalized_table",
    "paper_vs_measured",
    "suite_improvements",
]
