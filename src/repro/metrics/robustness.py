"""Cross-scenario robustness scoring for design-space sweeps.

The paper's "best design" is best *on one trace* (the Fig. 5 RFID
environment).  Once the scenario axis exists (see
:mod:`repro.energy.scenarios`), a better question is: which design stays
near-optimal across every environment it might be deployed into?

This module scores that.  PDP values are only comparable inside one
(scenario, circuit) pair — a stingy environment inflates everything — so
each record's PDP is first normalized to the best PDP achieved by *any*
design under the same (scenario, circuit).  A design's normalized PDP is
its degradation factor: 1.0 means it is that environment's winner, 1.3
means 30% worse than the winner.  Robustness is then the minimax view:

* ``worst`` — the largest degradation across scenarios (the number a
  deployment engineer cares about);
* ``mean`` — the average degradation (tie-breaker and overall health).

The robust-best design minimizes ``worst``, breaking ties on ``mean``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.dse.explorer import ExplorationRecord


@dataclass(frozen=True)
class RobustnessEntry:
    """Cross-scenario degradation profile of one (circuit, design point).

    Attributes:
        circuit: the evaluated circuit.
        label: the design point's display label.
        degradation: scenario label -> normalized PDP (1.0 = that
            scenario's best design).
        worst: max degradation across the scenarios seen.
        mean: average degradation across the scenarios seen.
        coverage: scenarios this design was evaluated under.
    """

    circuit: str
    label: str
    degradation: dict[str, float]
    worst: float
    mean: float
    coverage: int


def robustness_report(
    records: Sequence["ExplorationRecord"],
) -> list[RobustnessEntry]:
    """Score every design's PDP degradation across the scenario set.

    Designs evaluated under fewer scenarios than the full set (a point
    can fail under one environment and succeed under another) still get
    an entry, with ``coverage`` saying how many environments it
    survived; rank entries by ``(-coverage, worst, mean)`` to prefer
    designs that survive everywhere.

    Returns:
        Entries sorted most-robust first.
    """
    from repro.dse.scoring import best_pdp_by_group, pdp_degradation

    # Best PDP per (scenario, circuit): the normalization denominator.
    best = best_pdp_by_group(records)

    # Degradation profile per (circuit, design point).
    profiles: dict[tuple, dict[str, float]] = {}
    labels: dict[tuple, tuple[str, str]] = {}
    for r in records:
        key = (r.circuit, *r.point.identity())
        ratio = pdp_degradation(
            r.pdp_js, best[(r.scenario.label(), r.circuit)]
        )
        profiles.setdefault(key, {})[r.scenario.label()] = ratio
        labels[key] = (r.circuit, r.point.label())

    entries = []
    for key, degradation in profiles.items():
        circuit, label = labels[key]
        values = list(degradation.values())
        entries.append(
            RobustnessEntry(
                circuit=circuit,
                label=label,
                degradation=dict(degradation),
                worst=max(values),
                mean=sum(values) / len(values),
                coverage=len(values),
            )
        )
    entries.sort(key=lambda e: (-e.coverage, e.worst, e.mean))
    return entries


def best_robust(
    records: Sequence["ExplorationRecord"],
) -> RobustnessEntry:
    """The design minimizing worst-case degradation across scenarios.

    Raises:
        ValueError: when ``records`` is empty.
    """
    entries = robustness_report(records)
    if not entries:
        raise ValueError("no records to choose from")
    return entries[0]


def format_robustness(
    entries: Sequence[RobustnessEntry], limit: int | None = None
) -> str:
    """Render a robustness report as an aligned text table.

    Args:
        entries: output of :func:`robustness_report`.
        limit: show only the first ``limit`` entries when given.
    """
    from repro.metrics.report import format_table

    shown = list(entries[:limit] if limit is not None else entries)
    scenario_labels: list[str] = []
    for entry in shown:
        for label in entry.degradation:
            if label not in scenario_labels:
                scenario_labels.append(label)
    rows = []
    for entry in shown:
        rows.append(
            [
                entry.circuit,
                entry.label,
                *(
                    f"{entry.degradation[s]:.3f}"
                    if s in entry.degradation
                    else "-"
                    for s in scenario_labels
                ),
                f"{entry.worst:.3f}",
                f"{entry.mean:.3f}",
            ]
        )
    return format_table(
        ["circuit", "design point", *scenario_labels, "worst", "mean"],
        rows,
        title="cross-scenario robustness (normalized PDP; 1.000 = "
        "scenario best)",
    )
