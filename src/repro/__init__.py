"""Reproduction of *DIAC: Design Exploration of Intermittent-Aware
Computing Realizing Batteryless Systems* (DATE 2024).

The package implements the full DIAC flow — tree generation, task
granularity policies, NVM replacement, code generation — together with the
substrates the paper depends on: a gate-level netlist IR with ISCAS-89 and
BLIF parsers, a 45 nm characterization library, NVM technology models, a
CACTI-style array cost model, an energy-harvesting / capacitor simulation,
the Algorithm 1 finite-state machine, an intermittent execution simulator,
and the NV-based / NV-clustering baselines the paper compares against.

Quickstart::

    from repro import circuits
    from repro.core import DiacSynthesizer
    from repro.evaluation import evaluate_circuit

    netlist = circuits.parse_bench(circuits.S27_BENCH, name="s27")
    design = DiacSynthesizer().run(netlist)
    print(design.report_text())

    evaluation = evaluate_circuit("s27")
    print(evaluation.normalized_pdp())
"""

from repro import calibration
from repro.circuits import GateType, Netlist, parse_bench, parse_blif
from repro.core import DiacConfig, DiacDesign, DiacSynthesizer
from repro.evaluation import (
    CircuitEvaluation,
    evaluate_circuit,
    evaluate_design,
    evaluate_suite,
)
from repro.tech import MRAM, RERAM, NvmTechnology, synthesize

__version__ = "1.0.0"

__all__ = [
    "CircuitEvaluation",
    "DiacConfig",
    "DiacDesign",
    "DiacSynthesizer",
    "GateType",
    "MRAM",
    "Netlist",
    "NvmTechnology",
    "RERAM",
    "__version__",
    "calibration",
    "evaluate_circuit",
    "evaluate_design",
    "evaluate_suite",
    "parse_bench",
    "parse_blif",
    "synthesize",
]
